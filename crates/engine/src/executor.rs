//! The stage executor.
//!
//! Executes a [`StageGraph`] on the (simulated) server. Functional execution
//! is real — every pipeline instance is a host thread processing real blocks,
//! so results are exact and device-shared state is genuinely updated
//! concurrently — while *performance* is accounted on the simulated resource
//! clocks: each device (CPU core or GPU) owns a clock, each DRAM node and each
//! PCIe link owns a clock, and the reported query time is the largest
//! completion timestamp observed (see `DESIGN.md` §4).
//!
//! Two scheduling modes exist, selected by
//! [`ExecutionMode`](hetex_common::ExecutionMode):
//!
//! * **Pipelined** (default) — all stages' pipeline-instance workers are
//!   spawned up front and connected through bounded [`BlockQueue`]s, one per
//!   consumer slot. Producers route, localize (mem-move) and push each block
//!   handle the moment it is produced, so transfers, CPU work and GPU work
//!   genuinely overlap; dependency edges (hash build before probe) are gates
//!   a consumer waits on, not materialization barriers. This is the paper's
//!   §3.1 architecture: routers connecting pipeline instances through
//!   asynchronous queues of block handles.
//! * **StageAtATime** — the legacy executor: stages run one after another,
//!   each fully materializing its outputs before the next starts, with
//!   routing as a serial pre-pass. Its simulated time honestly charges the
//!   materialization barrier (stage *k* cannot start, and cannot schedule
//!   transfers, before stage *k-1* completed). Kept selectable so the A/B
//!   comparison and the correctness gate stay honest.

use crate::codegen::{MemMoveMode, Stage, StageGraph, StageSource};
use hetex_common::{
    BlockHandle, EngineConfig, ExecutionMode, HetError, KernelMode, MemoryNodeId, Result,
};
use hetex_core::cost::{CostModel, DemandSplitter, SlowdownObserver, StealQuery};
use hetex_core::mem_move::MemMove;
use hetex_core::plan::RouterPolicy;
use hetex_core::queue::{BlockQueue, PopNext, ProducerGuard, QueueSlot};
use hetex_core::router::{LoadEstimator, Router};
use hetex_gpu_sim::GpuDevice;
use hetex_jit::{CompiledPipeline, ExecCtx, SharedState, TerminalStep};
use hetex_storage::{BlockLease, BlockManagerSet, Catalog, ExhaustionPolicy, Segmenter};
use hetex_topology::{
    CalibratedConstants, CostModel as WorkCost, DeviceId, DeviceKind, DmaEngine, FaultPlan,
    ResourceClock, ServerTopology, SimTime, WorkProfile,
};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::{Duration, Instant};

/// Router initialization and thread pinning overhead (§6.4: ~10 ms, visible
/// only for very small inputs).
pub const ROUTER_INIT_OVERHEAD: SimTime = SimTime::from_millis(10);

/// Filter selectivity the router assumes when estimating a block's cost for
/// load balancing (it cannot know real selectivities up front).
const ASSUMED_SELECTIVITY: f64 = 0.3;

/// How long a producer may park waiting for staging bytes (arena lease or
/// queue quota) before the acquisition fails. Long enough that real
/// back-pressure only slows the query; finite so a wedged pipeline reports a
/// `HetError::Memory` instead of hanging the process.
const STAGING_PARK_TIMEOUT: Duration = Duration::from_secs(5);

/// Minimum backlog depth a sibling queue must hold before it can be stolen
/// from. Two is the smallest depth where theft is guaranteed progress: the
/// victim keeps its head block (the one it pops next anyway) and the thief
/// takes work that would otherwise wait behind it — a depth-1 queue would
/// only invite ping-pong.
const STEAL_MIN_DEPTH: usize = 2;

/// How long a steal-eligible worker waits on its own queue before scanning
/// siblings for stealable backlog. Wall-clock only (the simulation charges
/// no cost for the poll); short enough that an idle worker notices a
/// straggler promptly.
const STEAL_POLL: Duration = Duration::from_micros(500);

/// Most consecutive claim-yields a straggling worker may take before it
/// processes a block regardless (see the claim-pacing comment in the worker
/// loop). Bounds the wall-clock stall and guarantees progress even when no
/// sibling ever finds the backlog profitable.
const MAX_CLAIM_YIELDS: usize = 64;

/// Base simulated backoff charged before re-running a transiently failed
/// kernel invocation; doubles with every consecutive retry of the same block.
const TRANSIENT_RETRY_BASE_NS: u64 = 50_000;

/// Consecutive transient failures of one block before the in-place retry
/// gives up and the device is declared lost (quarantined or, with recovery
/// off, surfaced as a structured `DeviceLost`).
const TRANSIENT_RETRY_BUDGET: u32 = 3;

/// Wall-clock cadence of the fault watchdog thread, and of a wedged worker's
/// quarantine recheck. Wall-clock only — the stall-detection *cost* is
/// charged in simulated time separately (see `WATCHDOG_DETECT_NS`).
const WATCHDOG_POLL: Duration = Duration::from_millis(5);

/// Consecutive watchdog polls a wedge-scripted device must show zero block
/// progress past its scripted onset before it is declared wedged. Multiple
/// polls distinguish "wedged" from "momentarily between blocks".
const WATCHDOG_STALL_POLLS: u32 = 3;

/// Floor of the simulated detection budget the watchdog charges a wedged
/// device before quarantining it. The actual budget is the larger of this
/// floor and two observed average block costs of the device — a watchdog
/// cannot call a device wedged faster than it could tell silence from one
/// slow block.
const WATCHDOG_DETECT_NS: u64 = 1_000_000;

/// Outcome of one steal attempt (see `Executor::steal_for`).
enum StealOutcome {
    /// A block was stolen and is ready for the thief to process.
    Stolen(BlockHandle),
    /// A sibling has stealable backlog, but moving its tail to this thief
    /// would finish later than leaving it — worth re-checking once the
    /// victim's clock has advanced.
    Unprofitable,
    /// No sibling holds enough backlog to steal from.
    Nothing,
}

/// The staging charge backing one queued block in governed pipelined mode:
/// the byte admission into the consumer's queue plus the arena lease on the
/// consumer's memory node. Attached to the handle as its staging token; the
/// consumer's drop of the handle releases both, waking parked producers.
#[derive(Debug)]
struct StagingCharge {
    _slot: Option<QueueSlot>,
    _lease: BlockLease,
}

/// Per-device-kind execution statistics of one query.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeviceKindStats {
    /// Blocks processed by instances of this device kind.
    pub blocks: u64,
    /// Simulated busy nanoseconds accumulated by this device kind.
    pub busy_ns: u64,
    /// Modeled bytes scanned by this device kind.
    pub bytes_scanned: f64,
}

/// Wall-clock milestones of one stage, used to observe genuine pipelining:
/// in pipelined mode a consumer stage processes its first block while its
/// producer stage is still running.
#[derive(Debug, Clone, Default)]
pub struct StageTimeline {
    /// Wall-clock nanoseconds (since query start) when the stage's workers
    /// processed their first block; `None` if the stage saw no blocks.
    pub first_block_wall_ns: Option<u64>,
    /// Wall-clock nanoseconds when the stage finished.
    pub finished_wall_ns: u64,
}

/// The raw outcome of running a stage graph.
#[derive(Debug)]
pub struct ExecutionResult {
    /// Result rows (keys then aggregates, sorted by key for group-bys).
    pub rows: Vec<Vec<i64>>,
    /// Simulated end-to-end execution time.
    pub sim_time: SimTime,
    /// Wall-clock time of the functional execution (not the reported metric).
    pub wall_time: std::time::Duration,
    /// Per device kind statistics.
    pub per_kind: HashMap<DeviceKind, DeviceKindStats>,
    /// Bytes moved over interconnects (weighted).
    pub bytes_transferred: f64,
    /// Wall-clock milestones per stage (pipelining observability).
    pub stage_timeline: Vec<StageTimeline>,
    /// Simulated completion time of each stage.
    pub stage_completion: Vec<SimTime>,
    /// Peak leased staging bytes per memory node (governed pipelined mode
    /// only; empty when byte governance is off or in stage-at-a-time mode).
    pub staging_peaks: Vec<(MemoryNodeId, u64)>,
    /// Blocks adaptively re-routed (stolen from an overloaded sibling's
    /// queue) per stage; all zeros when stealing is disabled or in
    /// stage-at-a-time mode.
    pub blocks_stolen: Vec<u64>,
    /// Cross-node control-plane traffic: block handles pushed into a queue
    /// on a memory node other than the block's (a remote queue mutex
    /// acquisition each). Measured in every pipelined run; *priced* into
    /// routing only when the cost model's control-plane term is on.
    pub remote_control_acquisitions: u64,
    /// Observed-slowdown EWMA per device slot (charged vs nominal busy
    /// time, 1.0 = healthy), indexed like the topology's device list.
    /// Measured in every pipelined run; *priced* into routing projections
    /// only when `CalibrationConfig::slowdown_feedback` is on. Empty in
    /// stage-at-a-time mode.
    pub observed_slowdowns: Vec<f64>,
    /// The constants the engine-construction topology micro-probe measured
    /// (control-plane round trip, per-link effective bandwidth). `None` in
    /// stage-at-a-time mode; present in pipelined runs whether or not
    /// `CalibrationConfig::measured_constants` let routing consume them.
    pub probed_constants: Option<Arc<CalibratedConstants>>,
    /// Transient kernel failures absorbed by bounded in-place retry (zero
    /// without an injected fault plan).
    pub transient_retries: u64,
    /// Blocks re-executed on a surviving sibling after a device quarantine
    /// (zero without an injected fault plan).
    pub recovered_blocks: u64,
    /// Staging bytes still leased when the execution finished, measured
    /// after remote caches were flushed back to their home arenas. Zero on
    /// every clean run — the fault-invariant suite's leak check.
    pub staging_leaked_bytes: u64,
    /// Observed (rows_in, rows_out) per stage: physical rows entering each
    /// stage's pipelines across all instances and rows the stage emitted —
    /// the *actual* per-stage selectivities, as opposed to the structural
    /// estimates routing plans with. Best-effort under fault recovery
    /// (re-executed blocks may be counted on both the failed and the
    /// surviving instance).
    pub stage_rows: Vec<(u64, u64)>,
}

/// Per-execution fault-recovery state, created only when the topology
/// carries a [`FaultPlan`]. Healthy runs carry `None` and skip every check
/// — the recovery machinery costs them nothing, simulated or wall-clock.
struct FaultState {
    plan: Arc<FaultPlan>,
    /// One quarantine flag per device (topology device order). Set once and
    /// never cleared: a quarantined device takes no further work this run.
    quarantined: Vec<AtomicBool>,
    /// Kernel-invocation counter per device — the index of the fault plan's
    /// deterministic transient-failure draw.
    invocations: Vec<AtomicU64>,
    /// Blocks completed per device — the progress signal the watchdog's
    /// stall detector compares across polls.
    progressed: Vec<AtomicU64>,
    /// Blocks re-executed on a survivor after a quarantine (observability).
    recovered: AtomicU64,
    /// Transient failures absorbed by in-place retry (observability).
    retries: AtomicU64,
}

impl FaultState {
    fn new(plan: Arc<FaultPlan>, devices: usize) -> Self {
        Self {
            plan,
            quarantined: (0..devices).map(|_| AtomicBool::new(false)).collect(),
            invocations: (0..devices).map(|_| AtomicU64::new(0)).collect(),
            progressed: (0..devices).map(|_| AtomicU64::new(0)).collect(),
            recovered: AtomicU64::new(0),
            retries: AtomicU64::new(0),
        }
    }

    fn is_quarantined(&self, device: DeviceId) -> bool {
        self.quarantined[device.index()].load(Ordering::Acquire)
    }

    /// Quarantine `device` (idempotent): routing stops projecting onto it,
    /// siblings may steal its backlog at any depth, and its own worker
    /// re-homes its remaining stream the next time it looks at the flag.
    fn quarantine(&self, device: DeviceId) {
        self.quarantined[device.index()].store(true, Ordering::Release);
    }

    fn next_invocation(&self, device: DeviceId) -> u64 {
        self.invocations[device.index()].fetch_add(1, Ordering::Relaxed)
    }

    fn note_progress(&self, device: DeviceId) {
        self.progressed[device.index()].fetch_add(1, Ordering::Relaxed);
    }
}

/// Executes stage graphs on a topology.
pub struct Executor {
    topology: Arc<ServerTopology>,
    gpus: HashMap<DeviceId, Arc<GpuDevice>>,
    /// Work pricing only (toggle-independent `time_ns`). Deliberately the
    /// bare topology model, *not* a [`CostModel`]: the estimation terms must
    /// always come from the per-execution model built from the run's
    /// `EngineConfig`, and this type makes calling them on the field
    /// unrepresentable.
    work_cost: WorkCost,
    /// Constants the topology micro-probe measured at construction
    /// (`hetex_topology::probe`): the control-plane round trip and each
    /// link's effective bandwidth. Attached to every pipelined execution's
    /// cost model; whether routing *consumes* them is the run's
    /// `CalibrationConfig::measured_constants` toggle.
    probed_constants: Arc<CalibratedConstants>,
    /// An externally owned slowdown observer shared across executions (the
    /// serving layer's server-lifetime EWMAs: one query's observed straggler
    /// informs the next query's routing). `None` — the default — makes every
    /// pipelined execution create its own fresh observer, the single-query
    /// behaviour.
    shared_observer: Option<Arc<SlowdownObserver>>,
    /// Simulated time the most recent *failed* execution had reached when its
    /// error surfaced — the progress a degraded restart throws away. The
    /// engine takes (and clears) this when accounting a failed attempt.
    failed_sim_time: Mutex<Option<SimTime>>,
}

/// Routing state of one stage, shared by every producer pushing into it:
/// the router, the per-consumer devices/memory nodes, and the lock-free load
/// estimates driving the least-loaded policy.
struct StageRouting<'a> {
    stage: &'a Stage,
    router: Router<'a>,
    instance_devices: Vec<DeviceId>,
    instance_nodes: Vec<MemoryNodeId>,
    /// Dense index of each consumer's memory node into `node_load`.
    node_index: Vec<usize>,
    /// Per-consumer load estimates (device time committed per routed block).
    est: LoadEstimator,
    /// Per-memory-node load estimates: a socket's cores share its DRAM
    /// bandwidth, so a block's projected completion on a consumer is the max
    /// of its device backlog and its memory node's backlog — mirroring the
    /// device-clock / node-clock split the executor charges at run time.
    node_load: Vec<AtomicU64>,
    /// Assumed fraction of tuples surviving the stage's fused steps
    /// (stage-constant; precomputed off the per-block routing path).
    est_selectivity: f64,
    /// Assumed hash probes per input tuple across the fused probe steps.
    est_probes_per_row: f64,
    /// Per-consumer nanoseconds actually charged to the device clock — the
    /// feedback half of the straggler detector. Together with
    /// `nominal_busy`, the ratio `charged/nominal` is a consumer's observed
    /// slowdown: 1.0 for a healthy device, larger when reality (an
    /// unforeseen `exec_slowdown`, contention) costs more than the model
    /// predicted. The steal profitability check scales the victim's backlog
    /// by this ratio, so hidden stragglers are priced by what they *did*,
    /// not what the estimates promised.
    charged_busy: Vec<AtomicU64>,
    /// Per-consumer nanoseconds the nominal cost model prices for the same
    /// processed work (denominator of the observed-slowdown ratio).
    nominal_busy: Vec<AtomicU64>,
    /// Per-consumer count of processed blocks; `charged_busy / processed` is
    /// a consumer's observed average block cost, the basis of the steal
    /// profitability pre-check (which must run *before* a block leaves the
    /// victim's queue — see `Executor::steal_for`).
    processed: Vec<AtomicU64>,
}

impl StageRouting<'_> {
    /// Observed slowdown of consumer `slot`: charged over nominal busy time,
    /// 1.0 until the consumer has processed anything.
    fn observed_slowdown(&self, slot: usize) -> f64 {
        let nominal = self.nominal_busy[slot].load(Ordering::Relaxed);
        if nominal == 0 {
            return 1.0;
        }
        (self.charged_busy[slot].load(Ordering::Relaxed) as f64 / nominal as f64).max(1.0)
    }

    /// Observed average charged cost per block of consumer `slot`, or `None`
    /// until it has processed anything.
    fn observed_avg_cost(&self, slot: usize) -> Option<u64> {
        let blocks = self.processed[slot].load(Ordering::Relaxed);
        if blocks == 0 {
            return None;
        }
        Some(self.charged_busy[slot].load(Ordering::Relaxed) / blocks)
    }
}

/// A dependency gate: consumer workers of a stage block here until every
/// build stage the pipeline probes has signalled completion, and inherit the
/// largest simulated completion time as their scheduling floor.
struct Gate {
    state: StdMutex<(usize, SimTime)>,
    cv: Condvar,
}

impl Gate {
    fn new(dependencies: usize) -> Self {
        Self { state: StdMutex::new((dependencies, SimTime::ZERO)), cv: Condvar::new() }
    }

    /// One dependency completed at simulated time `at`.
    fn open(&self, at: SimTime) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.0 = state.0.saturating_sub(1);
        state.1 = state.1.max(at);
        if state.0 == 0 {
            self.cv.notify_all();
        }
    }

    /// Block until every dependency completed; returns the simulated floor.
    fn wait(&self) -> SimTime {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        while state.0 > 0 {
            state = self.cv.wait(state).unwrap_or_else(|e| e.into_inner());
        }
        state.1
    }

    /// The gate's partial floor so far, in nanoseconds: the largest completion
    /// time among the dependencies that already opened (0 while none did).
    /// Routing combines this with the load-estimator projections of the still
    /// running dependencies into its gate-time estimate.
    fn floor_ns(&self) -> u64 {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).1.as_nanos()
    }

    /// True once every dependency has completed (consumers no longer wait).
    fn is_open(&self) -> bool {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).0 == 0
    }
}

/// Completion bookkeeping of one pipelined stage.
struct StageProgress {
    /// Workers still running.
    remaining: AtomicUsize,
    /// Largest simulated completion time observed so far.
    completion: Mutex<SimTime>,
    /// This stage's producer registrations on its consumer's queues, dropped
    /// (→ `producer_done`) by the last finishing worker after the terminal
    /// emission was pushed.
    downstream_guards: Mutex<Vec<ProducerGuard>>,
    /// Wall-clock ns of the first processed block (`u64::MAX` = none yet).
    first_block_wall: AtomicU64,
    /// Wall-clock ns when the stage finished.
    finished_wall: AtomicU64,
    /// Blocks this stage's workers stole from overloaded siblings.
    blocks_stolen: AtomicU64,
    /// Physical rows that entered this stage's pipelines (summed across
    /// instances) — the numerator of the stage's actual selectivity.
    rows_in: AtomicU64,
    /// Physical rows this stage's pipelines emitted (block outputs plus
    /// finalize flushes).
    rows_out: AtomicU64,
}

impl StageProgress {
    fn new(workers: usize) -> Self {
        Self {
            remaining: AtomicUsize::new(workers),
            completion: Mutex::new(SimTime::ZERO),
            downstream_guards: Mutex::new(Vec::new()),
            first_block_wall: AtomicU64::new(u64::MAX),
            finished_wall: AtomicU64::new(0),
            blocks_stolen: AtomicU64::new(0),
            rows_in: AtomicU64::new(0),
            rows_out: AtomicU64::new(0),
        }
    }

    fn record_first_block(&self, wall_ns: u64) {
        let _ = self.first_block_wall.fetch_min(wall_ns, Ordering::Relaxed);
    }

    fn timeline(&self) -> StageTimeline {
        let first = self.first_block_wall.load(Ordering::Relaxed);
        StageTimeline {
            first_block_wall_ns: (first != u64::MAX).then_some(first),
            finished_wall_ns: self.finished_wall.load(Ordering::Relaxed),
        }
    }
}

impl Executor {
    /// An executor for the given topology, creating one simulated GPU per GPU
    /// device in the topology.
    pub fn new(topology: Arc<ServerTopology>) -> Self {
        // The topology micro-probe runs once per executor, against scratch
        // clocks (it never perturbs the topology's own clocks): a handful of
        // reservations measuring the cross-socket round trip and each
        // link's effective bandwidth.
        let probed_constants = Arc::new(hetex_topology::probe::probe(&topology));
        Self::with_constants(topology, probed_constants)
    }

    /// An executor reusing already-probed constants instead of re-running the
    /// topology micro-probe. The engine probes once at construction and hands
    /// the same `Arc` to every per-query (and per-degraded-attempt) executor:
    /// exclusion never changes links or sockets, so the measured constants
    /// stay valid for the whole engine lifetime.
    pub fn with_constants(
        topology: Arc<ServerTopology>,
        probed_constants: Arc<CalibratedConstants>,
    ) -> Self {
        let gpus = topology
            .gpus()
            .into_iter()
            .map(|id| {
                let profile = topology.device(id).expect("gpu device exists").clone();
                (id, Arc::new(GpuDevice::new(id, profile)))
            })
            .collect();
        Self {
            topology,
            gpus,
            work_cost: WorkCost::new(),
            probed_constants,
            shared_observer: None,
            failed_sim_time: Mutex::new(None),
        }
    }

    /// Attach a server-lifetime slowdown observer shared across executions:
    /// pipelined runs record into (and read from) it instead of a fresh
    /// per-run observer, so observed stragglers carry over between queries.
    pub fn with_shared_observer(mut self, observer: Arc<SlowdownObserver>) -> Self {
        self.shared_observer = Some(observer);
        self
    }

    /// The constants the construction-time topology micro-probe measured.
    pub fn probed_constants(&self) -> &Arc<CalibratedConstants> {
        &self.probed_constants
    }

    /// The simulated time the last failed execution had reached when its
    /// error surfaced, clearing the record. `None` when nothing failed since
    /// the last take (or the failure happened before any work was simulated).
    pub fn take_failed_sim_time(&self) -> Option<SimTime> {
        self.failed_sim_time.lock().take()
    }

    /// The simulated GPUs, keyed by device id.
    pub fn gpus(&self) -> &HashMap<DeviceId, Arc<GpuDevice>> {
        &self.gpus
    }

    /// Execute a stage graph in the configured scheduling mode.
    ///
    /// Error contract: every `Err` return leaves [`Self::take_failed_sim_time`]
    /// holding `Some` — the simulated time this execution burned before its
    /// error surfaced ([`SimTime::ZERO`] for failures preceding any simulated
    /// work). The record is cleared at entry, so a take after an error is
    /// unambiguously *this* execution's, never a stale one.
    pub fn execute(
        &self,
        graph: &StageGraph,
        catalog: &Catalog,
        config: &EngineConfig,
    ) -> Result<ExecutionResult> {
        *self.failed_sim_time.lock() = None;
        match config.execution_mode {
            ExecutionMode::Pipelined => self.execute_pipelined(graph, catalog, config),
            ExecutionMode::StageAtATime => self.execute_stage_at_a_time(graph, catalog, config),
        }
    }

    /// Record the simulated time a failing execution path burned, keeping the
    /// largest value when several paths report (a stage worker's completion
    /// fold, then the caller's materialization barrier).
    fn record_burned(&self, reached: SimTime) {
        let mut failed = self.failed_sim_time.lock();
        *failed = Some(failed.map_or(reached, |prev| prev.max(reached)));
    }

    // ------------------------------------------------------------------
    // Shared machinery
    // ------------------------------------------------------------------

    fn device_clocks(&self) -> HashMap<DeviceId, ResourceClock> {
        // One persistent clock per device: a core used by several stages
        // cannot do their work at the same simulated time.
        self.topology
            .devices()
            .iter()
            .enumerate()
            .map(|(idx, _)| (DeviceId::new(idx), ResourceClock::new(format!("dev{idx}"))))
            .collect()
    }

    fn stage_routing<'a>(&self, stage: &'a Stage) -> Result<StageRouting<'a>> {
        let router = Router::new(stage.policy, &stage.consumers)?;
        let instance_devices: Vec<DeviceId> = stage
            .consumers
            .iter()
            .map(|slot| {
                slot.affinity.for_kind(slot.kind).ok_or_else(|| {
                    HetError::Execution("consumer slot without a device affinity".into())
                })
            })
            .collect::<Result<Vec<_>>>()?;
        let instance_nodes: Vec<MemoryNodeId> = instance_devices
            .iter()
            .map(|&d| self.topology.local_memory_of(d))
            .collect::<Result<Vec<_>>>()?;
        let mut distinct_nodes: Vec<MemoryNodeId> = Vec::new();
        let node_index: Vec<usize> = instance_nodes
            .iter()
            .map(|node| {
                distinct_nodes.iter().position(|n| n == node).unwrap_or_else(|| {
                    distinct_nodes.push(*node);
                    distinct_nodes.len() - 1
                })
            })
            .collect();
        let est = LoadEstimator::new(stage.consumers.len());
        let node_load = (0..distinct_nodes.len()).map(|_| AtomicU64::new(0)).collect();
        // Walk the fused steps once with a running selectivity: every probe
        // step touches its hash table once per tuple *surviving the steps
        // before it* (a fact scan with no preceding filter probes every
        // row), and each filter or probe thins the stream by the assumed
        // selectivity. Pricing probes structurally matters because random
        // accesses are the CPU's scarce resource — a flat estimate
        // under-prices CPU consumers and the least-loaded policy then
        // overloads them.
        let mut est_selectivity = 1.0f64;
        let mut est_probes_per_row = 0.0f64;
        for step in stage.template(DeviceKind::CpuCore).steps() {
            match step {
                hetex_jit::Step::Filter { .. } => est_selectivity *= ASSUMED_SELECTIVITY,
                hetex_jit::Step::HashJoinProbe { .. } => {
                    est_probes_per_row += est_selectivity;
                    est_selectivity *= ASSUMED_SELECTIVITY;
                }
                hetex_jit::Step::Map { .. } => {}
            }
        }
        let charged_busy = (0..stage.consumers.len()).map(|_| AtomicU64::new(0)).collect();
        let nominal_busy = (0..stage.consumers.len()).map(|_| AtomicU64::new(0)).collect();
        let processed = (0..stage.consumers.len()).map(|_| AtomicU64::new(0)).collect();
        Ok(StageRouting {
            stage,
            router,
            instance_devices,
            instance_nodes,
            node_index,
            est,
            node_load,
            est_selectivity,
            est_probes_per_row,
            charged_busy,
            nominal_busy,
            processed,
        })
    }

    /// A DMA copy is only required when the consumer cannot address the block
    /// directly: GPU consumers need device-resident data, and no CPU core can
    /// address GPU device memory. CPU consumers read remote NUMA DRAM
    /// directly (at a penalty already captured by the socket DRAM clocks).
    fn requires_dma(
        &self,
        routing: &StageRouting<'_>,
        instance: usize,
        location: MemoryNodeId,
    ) -> bool {
        if location == routing.instance_nodes[instance] {
            return false;
        }
        let consumer_is_gpu = routing.stage.consumers[instance].kind == DeviceKind::Gpu;
        let block_on_gpu =
            self.topology.memory_node(location).map(|m| m.is_gpu_memory()).unwrap_or(false);
        consumer_is_gpu || block_on_gpu
    }

    /// Estimated cost of `handle` on each consumer of the stage: the same
    /// work/cost model the executor charges, evaluated with an assumed filter
    /// selectivity, throttled to PCIe speed when the data would have to move.
    /// Returns `(device_ns, memory_node_ns)` per consumer — the two backlogs
    /// the least-loaded policy balances.
    ///
    /// `pending_gate_ns` is `Some(estimated gate opening)` for a block routed
    /// into a stage whose dependency gate has not opened yet: mem-move
    /// schedules the DMA immediately at routing time, so the part of the
    /// transfer that completes *while the gate is still closed* is hidden by
    /// it and no longer delays the consumer's device — only the spill past
    /// the gate does. Each consumer can hide at most `gate_ns` of cumulative
    /// transfer (tracked on its node backlog axis), so a link that saturates
    /// long before the builds finish is still priced honestly. The hidden
    /// portion is not free either: it occupies the path to the consumer's
    /// memory, so it moves to the *node* axis of the projection (the two
    /// axes are maxed, modeling parallel streams). Pricing the full transfer
    /// on the device axis made compute-bound consumers look relatively cheap
    /// and handed them pre-gate blocks they could not start anyway (the
    /// over-prefetch of ROADMAP item 3); hiding it entirely would erase both
    /// data affinity and link saturation. The split keeps all three signals.
    fn block_costs(
        &self,
        routing: &StageRouting<'_>,
        handle: &BlockHandle,
        pending_gate_ns: Option<u64>,
        cost: &CostModel,
    ) -> (Vec<u64>, Vec<u64>) {
        let rows = handle.rows() as u64;
        let bytes = handle.byte_size() as u64;
        let counters = hetex_jit::BlockCounters {
            rows_in: rows,
            rows_terminal: (rows as f64 * routing.est_selectivity) as u64,
            probes: (rows as f64 * routing.est_probes_per_row) as u64,
            probe_matches: (rows as f64 * routing.est_probes_per_row * ASSUMED_SELECTIVITY) as u64,
            bytes_in: bytes,
            ..Default::default()
        };
        // Estimate CPU consumers at the kernel mode they will execute (the
        // vectorized lowering dispatches per chunk, not per tuple) and GPU
        // consumers always at the tuple-at-a-time shape — the SIMT lowering
        // is unchanged and still charges per-tuple ops. Pricing both kinds
        // with one shape would skew the device comparison: a vectorized
        // estimate under-prices GPUs (which never get cheaper), steering
        // blocks onto them that cost more than projected.
        let template = routing.stage.template(DeviceKind::CpuCore);
        let est_cpu_work =
            template.work_profile_for(&counters, handle.meta().weight, cost.estimate_kernel_mode());
        let est_gpu_work = if cost.estimate_kernel_mode() == KernelMode::TupleAtATime {
            est_cpu_work
        } else {
            template.work_profile_for(&counters, handle.meta().weight, KernelMode::TupleAtATime)
        };
        let mut device_ns = Vec::with_capacity(routing.stage.consumers.len());
        let mut node_ns = Vec::with_capacity(routing.stage.consumers.len());
        for i in 0..routing.stage.consumers.len() {
            let device = match self.topology.device(routing.instance_devices[i]) {
                Ok(d) => d,
                Err(_) => {
                    device_ns.push(u64::MAX);
                    node_ns.push(0);
                    continue;
                }
            };
            let est_work = match routing.stage.consumers[i].kind {
                DeviceKind::CpuCore => &est_cpu_work,
                DeviceKind::Gpu => &est_gpu_work,
            };
            let mut block_ns = self.work_cost.time_ns(est_work, device) as f64;
            let mut transfer_axis_ns = 0u64;
            if self.requires_dma(routing, i, handle.meta().location)
                && routing.stage.mem_move != MemMoveMode::None
            {
                // Price the DMA at the bottleneck link of the actual route
                // (successive blocks pipeline across hops, so the sustained
                // rate is the slowest link's, not the hop-latency sum). This
                // respects per-link bandwidth overrides in the topology, and
                // — with measured constants on — uses each link's *probed*
                // effective rate instead of its declared width.
                let transfer_ns = self
                    .topology
                    .route(handle.meta().location, routing.instance_nodes[i])
                    .map(|links| {
                        links
                            .iter()
                            .filter_map(|&l| self.topology.link(l).ok())
                            .map(|link| cost.link_transfer_ns(link, handle.weighted_bytes()))
                            .max()
                            .unwrap_or(0)
                    })
                    .unwrap_or(0);
                match pending_gate_ns {
                    Some(gate_ns) => {
                        // How much of this transfer still fits before the
                        // gate opens, given the transfer backlog already
                        // accumulated toward this consumer's node.
                        let node_backlog =
                            routing.node_load[routing.node_index[i]].load(Ordering::Relaxed);
                        let (spill, node_axis) =
                            cost.gated_transfer_split(transfer_ns, gate_ns, node_backlog);
                        block_ns = block_ns.max(spill as f64);
                        transfer_axis_ns = node_axis;
                    }
                    None => block_ns = block_ns.max(transfer_ns as f64),
                }
            }
            device_ns.push(block_ns as u64);
            let mem = self
                .topology
                .memory_node(routing.instance_nodes[i])
                .map(|node| {
                    (est_work.memory_node_bytes() / (node.bandwidth_gbps * 1e9) * 1e9) as u64
                })
                .unwrap_or(0);
            // Pushing to an off-node consumer acquires its queue mutex
            // across the interconnect — control-plane traffic the cost
            // model prices on the node axis (zero when the term is off).
            let control_ns =
                cost.control_plane_ns(routing.instance_nodes[i] != handle.meta().location);
            node_ns.push(mem.saturating_add(transfer_axis_ns).saturating_add(control_ns));
        }
        (device_ns, node_ns)
    }

    /// Route one block to a consumer of `routing`'s stage and localize it via
    /// mem-move. `not_before` floors the block's readiness (the stage-at-a-
    /// time executor uses it to charge the materialization barrier; the
    /// pipelined executor passes `SimTime::ZERO` so transfers overlap
    /// upstream compute). When `staging` is present (governed pipelined
    /// mode), each consumer node's arena occupancy is priced into the
    /// projection so routing steers away from memory-starved nodes, and ties
    /// prefer consumers already local to the block (NUMA-aware placement).
    ///
    /// `gate_ns` is the estimated opening time of the consumer stage's
    /// dependency gate (0 when ungated) and `gate_pending` whether that gate
    /// is still closed at routing time. Together they make the projection
    /// gate-aware: the gate shifts every consumer's projection to an absolute
    /// completion estimate, and a still-closed gate discounts the DMA of
    /// transfer-bound consumers (the transfer is scheduled now and hidden by
    /// the gate — see [`Self::block_costs`]), so compute-bound consumers of
    /// gated probe stages stop collecting pre-gate blocks they cannot start
    /// anyway.
    ///
    /// With a [`FaultState`] present, quarantined consumers are poisoned out
    /// of the projection and a pick that still lands on one (round-robin
    /// ignores projections) is redirected to the cheapest surviving sibling
    /// — when the stage routes anonymously. A bound stage (hash-partitioned
    /// or broadcast-target blocks) whose consumer died cannot re-home the
    /// block, so routing surfaces a structured [`HetError::DeviceLost`] and
    /// the engine's degraded-restart ladder takes over.
    ///
    /// Returns `(consumer index, localized handle)`.
    #[allow(clippy::too_many_arguments)]
    fn route_and_localize(
        &self,
        routing: &StageRouting<'_>,
        mem_move: &MemMove,
        gpu_nodes: &[MemoryNodeId],
        mut handle: BlockHandle,
        not_before: SimTime,
        staging: Option<&BlockManagerSet>,
        gate_ns: u64,
        gate_pending: bool,
        cost: &CostModel,
        stage_idx: usize,
        fault: Option<&FaultState>,
    ) -> Result<(usize, BlockHandle)> {
        if handle.meta().ready_at_ns < not_before.as_nanos() {
            handle.meta_mut().ready_at_ns = not_before.as_nanos();
        }
        let (device_ns, node_ns) =
            self.block_costs(routing, &handle, gate_pending.then_some(gate_ns), cost);
        // Price each consumer node's staging-arena occupancy: a block routed
        // to a starved node would park its producer on a lease, so its
        // projected cost grows with the leased fraction of the arena (the
        // cost model keeps the penalty disengaged below half occupancy —
        // below that the arena cannot park anyone).
        let penalties: Vec<u64> = routing
            .instance_nodes
            .iter()
            .enumerate()
            .map(|(i, node)| match staging.and_then(|s| s.manager(*node).ok()) {
                Some(manager) => cost.occupancy_penalty_ns(device_ns[i], manager.occupancy()),
                None => 0,
            })
            .collect();
        let source = handle.meta().location;
        // Observed-slowdown feedback (the calibration loop's routing half):
        // each consumer's device-axis term is multiplied by its device's
        // observed charged-vs-nominal EWMA, so a consumer whose device has
        // been seen straggling projects honestly expensive and stops
        // receiving new blocks — exactly 1.0 (and bit-identical integer
        // math) for healthy devices. With the toggle off the empty slice
        // skips even the per-block allocation on this hot path.
        let slowdowns: Vec<f64> = if cost.calibration().slowdown_feedback {
            routing
                .instance_devices
                .iter()
                .map(|device| cost.observed_device_slowdown(device.index()))
                .collect()
        } else {
            Vec::new()
        };
        // Project each consumer's completion from its two backlogs (device
        // and memory node — the same two clocks the executor charges); the
        // composition, including the strictly-increasing device tie-breaker
        // and the governed-mode NUMA nudge toward the block's current node,
        // lives in the cost model.
        let numa_tiebreak = staging.is_some();
        let mut projected: Vec<u64> = routing
            .est
            .projected_with_feedback(&device_ns, &penalties, gate_ns, &slowdowns)
            .into_iter()
            .enumerate()
            .map(|(i, dev)| {
                let node = routing.node_load[routing.node_index[i]]
                    .load(Ordering::Relaxed)
                    .saturating_add(node_ns[i]);
                cost.compose_projection(
                    dev,
                    node,
                    routing.instance_nodes[i] == source,
                    numa_tiebreak,
                )
            })
            .collect();
        // Quarantined consumers project as unusable — the load estimator's
        // u64::MAX convention for devices routing must steer around.
        if let Some(fault) = fault {
            for (i, p) in projected.iter_mut().enumerate() {
                if fault.is_quarantined(routing.instance_devices[i]) {
                    *p = u64::MAX;
                }
            }
        }
        let mut pick = routing.router.route(handle.meta(), &projected)?;
        if let Some(fault) = fault {
            if fault.is_quarantined(routing.instance_devices[pick]) {
                // Round-robin ignores projections entirely, and even the
                // least-loaded policy must pick *something* when every
                // consumer is poisoned. An anonymously routed block is
                // redirected to the cheapest surviving consumer; a bound
                // block (hash partition, broadcast target, union lane) has
                // nowhere sound to go.
                let anonymous = matches!(
                    routing.stage.policy,
                    RouterPolicy::RoundRobin | RouterPolicy::LeastLoaded
                );
                pick = anonymous
                    .then(|| {
                        projected
                            .iter()
                            .enumerate()
                            .filter(|&(_, &p)| p != u64::MAX)
                            .min_by_key(|&(_, &p)| p)
                            .map(|(i, _)| i)
                    })
                    .flatten()
                    .ok_or(HetError::DeviceLost {
                        device: routing.instance_devices[pick].index(),
                        stage: stage_idx,
                        block: 0,
                    })?;
            }
        }
        routing.est.commit(pick, device_ns[pick]);
        routing.node_load[routing.node_index[pick]].fetch_add(node_ns[pick], Ordering::Relaxed);

        let localized = match routing.stage.mem_move {
            MemMoveMode::None => handle,
            MemMoveMode::ToInstance => {
                if self.requires_dma(routing, pick, handle.meta().location) {
                    mem_move.relocate(&handle, routing.instance_nodes[pick])?
                } else {
                    handle
                }
            }
            MemMoveMode::Broadcast => {
                // Broadcast the dimension data to every GPU memory node (so
                // probes on GPUs read local data), and hand the local copy to
                // the building instance.
                if !gpu_nodes.is_empty() {
                    mem_move.broadcast(&handle, gpu_nodes)?;
                }
                if self.requires_dma(routing, pick, handle.meta().location) {
                    mem_move.relocate(&handle, routing.instance_nodes[pick])?
                } else {
                    handle
                }
            }
        };
        Ok((pick, localized))
    }

    /// Adaptive re-routing: try to steal one block for the idle worker at
    /// slot `thief` from the most-loaded sibling of the same stage whose
    /// backlog holds at least [`STEAL_MIN_DEPTH`] blocks. Returns the block
    /// ready for the thief to process, or `None` when nothing is stealable
    /// (or nothing is *profitably* stealable).
    ///
    /// Profitability is judged on the **device clocks** and **observed
    /// average block costs**, not the routing estimator: both carry every
    /// nanosecond actually charged, so they are the only place an unforeseen
    /// straggler (a slowdown the cost model did not price) is visible — the
    /// paper's feedback signal. The stolen tail block would complete on the
    /// victim no earlier than `victim_clock + backlog × victim_avg_cost`,
    /// and on the thief at `thief_clock + thief_avg_cost` (doubled as
    /// hysteresis: near equilibrium a steal only duplicates what
    /// least-loaded routing already achieves while paying an extra
    /// relocation). Without this check an idle-but-expensive consumer (a CPU
    /// core eyeing a GPU-bound backlog) would "rescue" blocks into a slower
    /// home than the straggler itself.
    ///
    /// The check runs *before* anything leaves the victim's queue, and a
    /// consummated steal is always processed by the thief: a block briefly
    /// removed and returned could strand forever in a queue whose consumer
    /// observed termination in between — the exactly-once guarantee admits
    /// no "changed my mind" path. Consumers that have not processed any
    /// block yet have no observed cost, so nothing is stolen from or by
    /// them (a straggler is only detectable after it has straggled).
    ///
    /// A consummated steal de-commits the routing-time decision: the
    /// estimated cost moves from the victim's load accumulators (device and
    /// memory node) to the thief's, so subsequent routing sees the
    /// re-balanced world. The block's staging charge follows the
    /// lease-ordering rule of DESIGN.md §4.2 extended across nodes — the
    /// victim-side charge (queue byte slot plus the lease on the victim's
    /// node) is released *before* the thief localizes the block and
    /// re-charges its own node, so a thief parked on a full arena holds
    /// nothing.
    #[allow(clippy::too_many_arguments)]
    fn steal_for(
        &self,
        routing: &StageRouting<'_>,
        queues: &[BlockQueue],
        thief: usize,
        thief_clock: &ResourceClock,
        device_clocks: &HashMap<DeviceId, ResourceClock>,
        mem_move: &MemMove,
        staging: Option<&BlockManagerSet>,
        staging_budget: u64,
        cost: &CostModel,
        fault: Option<&FaultState>,
    ) -> Result<StealOutcome> {
        let dead =
            |slot: usize| fault.is_some_and(|f| f.is_quarantined(routing.instance_devices[slot]));
        let mut best: Option<(usize, usize)> = None;
        for (slot, queue) in queues.iter().enumerate() {
            if slot == thief {
                continue;
            }
            // A quarantined sibling's backlog would never complete on its
            // own, so any depth is stealable from it — even the head block
            // its consumer would otherwise pop next.
            let min_depth = if dead(slot) { 1 } else { STEAL_MIN_DEPTH };
            let depth = queue.len();
            if depth >= min_depth && best.is_none_or(|(_, d)| depth > d) {
                best = Some((slot, depth));
            }
        }
        let Some((victim, depth)) = best else { return Ok(StealOutcome::Nothing) };

        // Rescuing a dead sibling is unconditionally profitable: the victim
        // will never process the block, so every comparison against its
        // clock is moot. Everything below prices live stragglers only.
        if !dead(victim) {
            // Only observed stragglers are worth stealing from. A backlog on
            // a healthy consumer is ordinary routing imbalance: rescuing it
            // wins a thin per-block margin but pays an un-modeled shared
            // cost (the relocation's link bandwidth), which measurably loses
            // on healthy workloads — and injects wall-clock-dependent noise
            // into otherwise deterministic simulated times.
            if !cost.is_straggler(routing.observed_slowdown(victim)) {
                return Ok(StealOutcome::Unprofitable);
            }

            // Feedback-driven profitability pre-check (see the doc comment),
            // evaluated while the block is still safely queued. The rescue's
            // relocation would queue behind any outstanding DMA on the route
            // from where the block's data actually lives (the peeked tail's
            // location — advisory, the tail can change before the steal, but
            // a mis-peek only perturbs an estimate) to the thief's node; the
            // cost model's link-congestion term prices that backlog into the
            // thief's side (zero when the thief can address the data in
            // place).
            let (Some(victim_avg), Some(thief_avg)) =
                (routing.observed_avg_cost(victim), routing.observed_avg_cost(thief))
            else {
                return Ok(StealOutcome::Unprofitable);
            };
            // Fold the shared slowdown EWMA into the victim's price (the
            // calibration loop's steal half, `steal_feedback`): a victim
            // whose *device* has been observed straggling in other stages
            // too is priced by that history, not only this stage's average.
            let victim_nominal_avg = routing.nominal_busy[victim]
                .load(Ordering::Relaxed)
                .checked_div(routing.processed[victim].load(Ordering::Relaxed))
                .unwrap_or(0);
            let victim_avg = cost.steal_victim_avg_ns(
                victim_avg,
                victim_nominal_avg,
                routing.instance_devices[victim].index(),
            );
            let thief_clock_ns = thief_clock.now().as_nanos();
            let data_location =
                queues[victim].tail_location().unwrap_or(routing.instance_nodes[victim]);
            let congestion_ns = if routing.stage.mem_move != MemMoveMode::None
                && self.requires_dma(routing, thief, data_location)
            {
                cost.link_congestion_ns(
                    &self.topology,
                    data_location,
                    routing.instance_nodes[thief],
                    thief_clock_ns,
                )
            } else {
                0
            };
            let query = StealQuery {
                victim_clock_ns: device_clocks
                    .get(&routing.instance_devices[victim])
                    .map(|c| c.now().as_nanos())
                    .unwrap_or(0),
                victim_avg_ns: victim_avg,
                backlog_depth: depth as u64,
                thief_clock_ns,
                thief_avg_ns: thief_avg,
                congestion_ns,
            };
            let profitable = cost.steal_profitable(&query);
            if std::env::var("HETEX_TRACE_STEAL").is_ok() {
                eprintln!(
                    "[steal] thief {thief} victim {victim} {query:?} outstanding {:.0}B \
                     slowdown {:.2} -> {}",
                    cost.outstanding_link_bytes(
                        &self.topology,
                        data_location,
                        routing.instance_nodes[thief],
                        thief_clock_ns,
                    ),
                    routing.observed_slowdown(victim),
                    if profitable { "steal" } else { "unprofitable" }
                );
            }
            if !profitable {
                return Ok(StealOutcome::Unprofitable);
            }
        }

        // The victim may have drained (or been closed) since the scan; a
        // failed steal is simply "nothing to do", never an error.
        let Some(mut block) = queues[victim].steal() else { return Ok(StealOutcome::Nothing) };

        // Steal-time cost estimates for the de-commit; these can differ
        // slightly from the routing-time commit (the block was localized in
        // between), and decommit saturates, so drift only perturbs the
        // balancing heuristic.
        let (device_ns, node_ns) = self.block_costs(routing, &block, None, cost);
        routing.est.decommit(victim, device_ns[victim]);
        routing.est.commit(thief, device_ns[thief]);
        let _ = routing.node_load[routing.node_index[victim]].fetch_update(
            Ordering::Relaxed,
            Ordering::Relaxed,
            |v| Some(v.saturating_sub(node_ns[victim])),
        );
        routing.node_load[routing.node_index[thief]].fetch_add(node_ns[thief], Ordering::Relaxed);

        // Release the victim-side staging charge before acquiring anything.
        let victim_node = routing.instance_nodes[victim];
        block.take_staging();

        // Localize for the thief when it cannot address the block where the
        // victim's mem-move left it (e.g. a CPU thief rescuing a block
        // already copied into a straggler GPU's device memory).
        if routing.stage.mem_move != MemMoveMode::None
            && self.requires_dma(routing, thief, block.meta().location)
        {
            block = mem_move.relocate(&block, routing.instance_nodes[thief])?;
        }

        // Re-charge on the thief's node (governed mode only). No queue-quota
        // admission: the block goes straight into processing, never into the
        // thief's buffer, but its bytes now live on the thief's node and must
        // be backed by that arena until the thief drops the handle.
        if let Some(staging) = staging {
            let bytes = (block.byte_size() as u64).min(staging_budget);
            if bytes > 0 {
                let lease = staging.acquire(
                    victim_node,
                    routing.instance_nodes[thief],
                    bytes,
                    ExhaustionPolicy::Park(STAGING_PARK_TIMEOUT),
                )?;
                block.attach_staging(Arc::new(StagingCharge { _slot: None, _lease: lease }));
            }
        }
        Ok(StealOutcome::Stolen(block))
    }

    /// Graceful degradation after a device quarantine: the lost worker's
    /// remaining stream — the block it may already hold plus everything its
    /// queue still buffers or receives — is re-executed on the least-loaded
    /// surviving sibling of the same stage, charged to the survivor's clock
    /// and profile. Crucially the lost worker *keeps consuming its own
    /// queue* (it merely executes on borrowed silicon), so the stage's
    /// exactly-once termination protocol — producer counts, finished
    /// sweeps, the completion fan-in — is untouched; pushing the backlog
    /// into sibling queues instead could race a sibling that already
    /// observed termination and silently drop rows. Each re-homed block
    /// follows the §4.2 lease-ordering rule across the device crossing:
    /// release the charge on the lost node, relocate, then acquire on the
    /// survivor's node.
    ///
    /// Only anonymously routed streams can be re-homed. Bound streams
    /// (hash-partitioned or broadcast-target blocks, union lanes) and
    /// stages with no surviving sibling escalate with a structured
    /// [`HetError::DeviceLost`]; the engine's degraded-restart rung then
    /// replans the query on the surviving devices.
    #[allow(clippy::too_many_arguments)]
    fn drain_on_survivor(
        &self,
        fault: &FaultState,
        routing: &StageRouting<'_>,
        stage_idx: usize,
        lost_slot: usize,
        anonymous: bool,
        in_hand: Option<BlockHandle>,
        lost_pipeline: &CompiledPipeline,
        lost_ctx: &mut ExecCtx,
        queue: &BlockQueue,
        device_clocks: &HashMap<DeviceId, ResourceClock>,
        mem_move: &MemMove,
        staging: Option<&BlockManagerSet>,
        staging_budget: u64,
        cost: &CostModel,
        config: &EngineConfig,
        state: &SharedState,
        per_kind: &Mutex<HashMap<DeviceKind, DeviceKindStats>>,
        feeds: Option<usize>,
        push: &dyn Fn(usize, BlockHandle) -> Result<()>,
        floor: SimTime,
    ) -> Result<SimTime> {
        let lost_device = routing.instance_devices[lost_slot];
        let lost_node = routing.instance_nodes[lost_slot];
        let stranded = queue.len() + usize::from(in_hand.is_some());
        let lost = || HetError::DeviceLost {
            device: lost_device.index(),
            stage: stage_idx,
            block: stranded,
        };
        if !config.fault.quarantine || !anonymous {
            return Err(lost());
        }
        // The least-loaded surviving sibling (by simulated clock) takes
        // over. None surviving → the whole stage is dead, escalate.
        let survivor = (0..routing.instance_devices.len())
            .filter(|&s| s != lost_slot && !fault.is_quarantined(routing.instance_devices[s]))
            .min_by_key(|&s| {
                device_clocks
                    .get(&routing.instance_devices[s])
                    .map(|c| c.now().as_nanos())
                    .unwrap_or(u64::MAX)
            })
            .ok_or_else(lost)?;
        let s_device = routing.instance_devices[survivor];
        let s_kind = routing.stage.consumers[survivor].kind;
        let s_node = routing.instance_nodes[survivor];
        let s_profile = self.topology.device(s_device)?.clone();
        let s_clock = device_clocks.get(&s_device).ok_or_else(lost)?.clone();
        let s_pipeline = routing.stage.template(s_kind).clone();
        let mut s_ctx = match s_kind {
            DeviceKind::Gpu => {
                let gpu = self.gpus.get(&s_device).cloned().ok_or_else(lost)?;
                ExecCtx::gpu(gpu, config.block_capacity)
            }
            DeviceKind::CpuCore => ExecCtx::cpu(s_node, config.block_capacity),
        }
        .with_kernel_mode(config.kernel_mode);

        let mut last_end = floor;
        let mut stats = DeviceKindStats::default();
        let flush = |out: hetex_jit::PipelineOutput,
                     last_end: &mut SimTime,
                     stats: &mut DeviceKindStats|
         -> Result<()> {
            if !out.work.is_empty() {
                let (end, busy) = self.charge(&s_clock, &s_profile, &out.work, *last_end);
                *last_end = (*last_end).max(end);
                stats.busy_ns += busy;
            }
            for mut produced in out.blocks {
                produced.meta_mut().ready_at_ns = last_end.as_nanos();
                if let Some(consumer) = feeds {
                    push(consumer, produced)?;
                }
            }
            Ok(())
        };

        // First, flush the lost lane's partially packed outputs. Completed
        // work lives in managed host-visible staging in this fault model
        // (kernels are transactional at block granularity and their packed
        // outputs survive the device), so only the flush itself is charged
        // — to the survivor, the device actually doing it.
        let out = lost_pipeline.finalize_instance(lost_ctx)?;
        flush(out, &mut last_end, &mut stats)?;

        // Then drain: the claimed block first, then the queue to exhaustion
        // (the producers still push into it and terminate it normally).
        let mut next = in_hand;
        loop {
            let mut block = match next.take() {
                Some(block) => block,
                None => match queue.pop() {
                    Some(block) => block,
                    None => break,
                },
            };
            if fault.is_quarantined(s_device) {
                // The survivor died while we were draining onto it. The
                // ladder still holds — escalate and let the restart rung
                // replan on whatever is left.
                return Err(HetError::DeviceLost {
                    device: s_device.index(),
                    stage: stage_idx,
                    block: queue.len() + 1,
                });
            }
            // Steal-style hand-off bookkeeping: the routing-time commit
            // moves from the lost slot to the survivor so subsequent
            // routing sees the re-balanced world, and the staging charge is
            // released on the lost node before the survivor's is acquired.
            let (device_ns, node_ns) = self.block_costs(routing, &block, None, cost);
            routing.est.decommit(lost_slot, device_ns[lost_slot]);
            routing.est.commit(survivor, device_ns[survivor]);
            let _ = routing.node_load[routing.node_index[lost_slot]].fetch_update(
                Ordering::Relaxed,
                Ordering::Relaxed,
                |v| Some(v.saturating_sub(node_ns[lost_slot])),
            );
            routing.node_load[routing.node_index[survivor]]
                .fetch_add(node_ns[survivor], Ordering::Relaxed);
            block.take_staging();
            if routing.stage.mem_move != MemMoveMode::None
                && self.requires_dma(routing, survivor, block.meta().location)
            {
                block = mem_move.relocate(&block, s_node)?;
            }
            if let Some(staging) = staging {
                let bytes = (block.byte_size() as u64).min(staging_budget);
                if bytes > 0 {
                    let lease = staging.acquire(
                        lost_node,
                        s_node,
                        bytes,
                        ExhaustionPolicy::Park(STAGING_PARK_TIMEOUT),
                    )?;
                    block.attach_staging(Arc::new(StagingCharge { _slot: None, _lease: lease }));
                }
            }
            let ready = SimTime::from_nanos(block.meta().ready_at_ns).max(floor);
            let out = s_pipeline.process_block(&block, state, &mut s_ctx)?;
            let (end, busy) = self.charge(&s_clock, &s_profile, &out.work, ready);
            last_end = last_end.max(end);
            let nominal_ns = self.work_cost.time_ns(&out.work, &s_profile);
            cost.observe(s_device.index(), busy, nominal_ns);
            routing.charged_busy[survivor].fetch_add(busy, Ordering::Relaxed);
            routing.nominal_busy[survivor].fetch_add(nominal_ns, Ordering::Relaxed);
            routing.processed[survivor].fetch_add(1, Ordering::Relaxed);
            fault.note_progress(s_device);
            fault.recovered.fetch_add(1, Ordering::Relaxed);
            stats.busy_ns += busy;
            stats.blocks += 1;
            stats.bytes_scanned += out.work.bytes_scanned;
            // Lease-ordering rule: release the input's staging before
            // acquiring charges for its outputs (see the worker loop).
            drop(block);
            for mut produced in out.blocks {
                produced.meta_mut().ready_at_ns = end.as_nanos();
                if let Some(consumer) = feeds {
                    push(consumer, produced)?;
                }
            }
        }

        // Flush the survivor lane too: it packed the re-homed rows.
        let out = s_pipeline.finalize_instance(&mut s_ctx)?;
        flush(out, &mut last_end, &mut stats)?;

        let mut kinds = per_kind.lock();
        let entry = kinds.entry(s_kind).or_default();
        entry.blocks += stats.blocks;
        entry.busy_ns += stats.busy_ns;
        entry.bytes_scanned += stats.bytes_scanned;
        Ok(last_end)
    }

    /// The input segments of a table-scan stage.
    fn table_segments(
        &self,
        table: &str,
        projection: &[String],
        catalog: &Catalog,
        config: &EngineConfig,
    ) -> Result<Vec<BlockHandle>> {
        let weight = config.weight_for(table);
        let table = catalog.get(table)?;
        let projection: Vec<&str> = projection.iter().map(String::as_str).collect();
        Segmenter::new(table, &projection, config.block_capacity).with_weight(weight).segments()
    }

    /// Charge modeled work to a device clock and its local memory node's
    /// bandwidth clock. The memory-node clock is a *utilization accumulator*:
    /// every block advances it by bytes / node_bandwidth, and a block cannot
    /// complete before the node has had enough cumulative capacity to serve
    /// it. This is what makes a socket's cores stop scaling once they
    /// saturate its DRAM (§6.4: the sum query plateaus at ~16 cores).
    fn charge(
        &self,
        clock: &ResourceClock,
        device_profile: &hetex_topology::DeviceProfile,
        work: &WorkProfile,
        not_before: SimTime,
    ) -> (SimTime, u64) {
        // The straggler multiplier applies at charge time only: routing-time
        // estimates keep pricing the nominal profile, exactly the blind spot
        // adaptive re-routing exists to absorb.
        let busy = (self.work_cost.time_ns(work, device_profile) as f64
            * device_profile.exec_slowdown) as u64;
        let (_, end) = clock.reserve(not_before, busy);
        let mut final_end = end;
        if work.memory_node_bytes() > 0.0 {
            if let (Ok(node), Ok(mem_clock)) = (
                self.topology.memory_node(device_profile.local_memory),
                self.topology.memory_clock(device_profile.local_memory),
            ) {
                let mem_ns = (work.memory_node_bytes() / (node.bandwidth_gbps * 1e9) * 1e9) as u64;
                let (_, mem_end) = mem_clock.reserve(SimTime::ZERO, mem_ns);
                // The device keeps issuing (out-of-order cores / latency-
                // hiding GPUs overlap DRAM stalls), so the node's backlog
                // delays this block's completion without serializing the
                // device clock behind the whole node. Keeping the two clocks
                // decoupled also makes the simulated time insensitive to the
                // wall-clock interleaving of concurrent workers.
                final_end = end.max(mem_end);
            }
        }
        (final_end, busy)
    }

    /// Run the final gather of a reduce/group-by stage: emit the shared-state
    /// results exactly once, on a CPU context (the paper's final
    /// single-instance gather pipeline). Returns `(result rows, blocks)`.
    fn emit_stage_results(
        &self,
        stage: &Stage,
        state: &SharedState,
        completion: SimTime,
        config: &EngineConfig,
    ) -> Result<(Vec<Vec<i64>>, Vec<BlockHandle>)> {
        if !matches!(
            stage.template(DeviceKind::CpuCore).terminal(),
            TerminalStep::Reduce { .. } | TerminalStep::GroupBy { .. }
        ) {
            return Ok((Vec::new(), Vec::new()));
        }
        let node = self.topology.cpu_memory_nodes()[0];
        let mut ctx =
            ExecCtx::cpu(node, config.block_capacity).with_kernel_mode(config.kernel_mode);
        let emitted = stage.template(DeviceKind::CpuCore).emit_state_results(state, &mut ctx)?;
        let mut rows = Vec::new();
        for handle in &emitted.blocks {
            let block = handle.block();
            for row in 0..block.rows() {
                rows.push(block.columns().iter().map(|c| c.get_i64(row).unwrap_or(0)).collect());
            }
        }
        let mut blocks = emitted.blocks;
        for b in &mut blocks {
            b.meta_mut().ready_at_ns = completion.as_nanos();
        }
        Ok((rows, blocks))
    }

    // ------------------------------------------------------------------
    // Pipelined executor (default)
    // ------------------------------------------------------------------

    fn execute_pipelined(
        &self,
        graph: &StageGraph,
        catalog: &Catalog,
        config: &EngineConfig,
    ) -> Result<ExecutionResult> {
        let wall_start = Instant::now();
        self.topology.reset_clocks();
        let dma = DmaEngine::new(Arc::clone(&self.topology));
        let mem_move = MemMove::new(dma);
        let device_clocks = self.device_clocks();
        let gpu_nodes = self.topology.gpu_memory_nodes();
        let trace = std::env::var("HETEX_TRACE_EXEC").is_ok();

        // The run's shared slowdown observer (one EWMA slot per device):
        // workers record every completed block's charged-vs-nominal ratio
        // into it, routing reads it back. Always measured; priced into
        // projections only when the calibration's feedback toggle is on.
        // A serving layer substitutes its server-lifetime observer here so
        // one query's straggler observation informs the next query.
        let observer = self
            .shared_observer
            .clone()
            .unwrap_or_else(|| Arc::new(SlowdownObserver::new(self.topology.devices().len())));

        // The run's unified cost model: every estimation term the router
        // path, the queue-admission path and the steal path consult, with
        // the per-term toggles this execution's config selects (§5 of
        // DESIGN.md) and the calibration inputs (§6): the construction-time
        // probe's measured constants and the observer above.
        let cost = CostModel::from_config(config)
            .with_constants(Arc::clone(&self.probed_constants))
            .with_observer(Arc::clone(&observer));

        let routing: Vec<StageRouting<'_>> =
            match graph.stages.iter().map(|s| self.stage_routing(s)).collect::<Result<Vec<_>>>() {
                Ok(routing) => routing,
                Err(e) => {
                    // Setup failure before any simulated work: the attempt
                    // burned exactly zero, recorded explicitly so the engine's
                    // attempt accounting never has to guess.
                    self.record_burned(SimTime::ZERO);
                    return Err(e);
                }
            };

        // Fault-recovery state: `Some` only when the topology carries a
        // non-empty injected fault plan. `None` short-circuits every
        // checkpoint below, so healthy runs execute the exact pre-fault
        // code path — zero overhead, simulated or wall-clock.
        let fault_state = self
            .topology
            .fault_plan()
            .filter(|p| !p.is_empty())
            .map(|p| FaultState::new(Arc::clone(p), self.topology.devices().len()));

        // Staging governance (§4.3): one byte-denominated arena per memory
        // node, sized by the configured per-node budget, created per
        // execution so peaks are per-query observables. `None` reproduces
        // the ungoverned PR 1 behaviour (handle-count bounds only).
        let staging: Option<BlockManagerSet> = config.staging_bytes.map(|budget| {
            let nodes: Vec<MemoryNodeId> =
                self.topology.memory_nodes().iter().map(|m| m.id).collect();
            BlockManagerSet::new(&nodes, budget)
        });

        // Every stage runs concurrently, so a node's staging budget is shared
        // by every consumer instance placed on it (across all stages). Each
        // queue gets an even byte share as its admission quota; the shares
        // sum to at most the node budget, so one stage's flood can never
        // starve another stage's consumers out of their reserved staging —
        // the key step of the deadlock-freedom argument in DESIGN.md.
        let mut consumers_per_node: HashMap<MemoryNodeId, u64> = HashMap::new();
        for r in &routing {
            for node in &r.instance_nodes {
                *consumers_per_node.entry(*node).or_default() += 1;
            }
        }

        // One queue per consumer slot, placed on the consumer's memory node
        // (NUMA-aware placement: the queue and the handles it buffers live
        // where the consumer reads them); producers register via the guards
        // below and terminate the consumer through `producer_done` (RAII).
        let queues: Vec<Vec<BlockQueue>> = graph
            .stages
            .iter()
            .enumerate()
            .map(|(stage_idx, stage)| {
                (0..stage.consumers.len())
                    .map(|slot| {
                        let node = routing[stage_idx].instance_nodes[slot];
                        let mut queue = match config.queue_capacity {
                            Some(cap) => BlockQueue::bounded(0, cap),
                            None => BlockQueue::new(0),
                        }
                        .on_node(node);
                        if let Some(budget) = config.staging_bytes {
                            let share =
                                budget / consumers_per_node.get(&node).copied().unwrap_or(1).max(1);
                            queue = queue.with_byte_quota(share);
                        }
                        queue
                    })
                    .collect()
            })
            .collect();

        // Demand-weighted quota re-split state (cost-model term 1): one
        // splitter per memory node over the queues placed on it. The initial
        // quotas above are the even PR 2 split (exactly what the cost model
        // returns before any demand was observed); every
        // `QUOTA_RESPLIT_CADENCE` admissions on a node, the splitter folds
        // each queue's newly admitted bytes into its EWMA and the shares are
        // re-applied — floored at one estimated maximum-size block so no
        // active queue ever starves below a single block.
        let mut quota_groups: Vec<(MemoryNodeId, Vec<(usize, usize)>)> = Vec::new();
        if config.staging_bytes.is_some() && cost.config().demand_weighted_quotas {
            for (stage_idx, r) in routing.iter().enumerate() {
                for (slot_idx, node) in r.instance_nodes.iter().enumerate() {
                    match quota_groups.iter_mut().find(|(n, _)| n == node) {
                        Some((_, members)) => members.push((stage_idx, slot_idx)),
                        None => quota_groups.push((*node, vec![(stage_idx, slot_idx)])),
                    }
                }
            }
        }
        let splitters: Vec<Mutex<DemandSplitter>> = quota_groups
            .iter()
            .map(|(_, members)| Mutex::new(DemandSplitter::new(members.len())))
            .collect();
        let quota_floor = config.est_max_block_bytes();

        let gates: Vec<Gate> = graph.stages.iter().map(|s| Gate::new(s.depends_on.len())).collect();
        let progress: Vec<StageProgress> =
            graph.stages.iter().map(|s| StageProgress::new(s.consumers.len())).collect();

        // Steal eligibility per stage: stealing re-binds a block to a sibling,
        // which is only sound when routing was anonymous to begin with.
        // Hash-partitioned and broadcast-target blocks are semantically bound
        // to their consumer (partitioned state, explicit copies) and a union
        // stage has no sibling to steal from.
        let stage_steals: Vec<bool> = graph
            .stages
            .iter()
            .map(|s| {
                config.steal_policy.is_enabled()
                    && s.consumers.len() > 1
                    && matches!(s.policy, RouterPolicy::RoundRobin | RouterPolicy::LeastLoaded)
            })
            .collect();

        // Recovery eligibility per stage — the same anonymity condition as
        // stealing but independent of the steal toggle: a quarantined
        // worker may re-home its stream exactly when any sibling could have
        // been routed the same blocks.
        let stage_anonymous: Vec<bool> = graph
            .stages
            .iter()
            .map(|s| {
                s.consumers.len() > 1
                    && matches!(s.policy, RouterPolicy::RoundRobin | RouterPolicy::LeastLoaded)
            })
            .collect();

        // Register each producing stage as ONE logical producer on each of
        // its consumer's queues: blocks flow from any worker at any time, and
        // the registration is released when the stage completes (after the
        // terminal emission was pushed).
        for (idx, feeds) in graph.wiring.feeds.iter().enumerate() {
            if let Some(consumer) = feeds {
                let guards: Vec<ProducerGuard> =
                    queues[*consumer].iter().map(|q| q.register_producer()).collect();
                *progress[idx].downstream_guards.lock() = guards;
            }
        }

        let per_kind: Mutex<HashMap<DeviceKind, DeviceKindStats>> = Mutex::new(HashMap::new());
        let result_rows: Mutex<Vec<Vec<i64>>> = Mutex::new(Vec::new());
        let first_error: Mutex<Option<HetError>> = Mutex::new(None);

        // Everything below borrows; worker threads are scoped.
        let first_error = &first_error;
        let record_error = move |e: HetError| {
            let mut slot = first_error.lock();
            if slot.is_none() {
                *slot = Some(e);
            }
        };
        let routing = &routing;
        let queues = &queues;
        let gates = &gates;
        let progress = &progress;
        let stage_steals = &stage_steals;
        let stage_anonymous = &stage_anonymous;
        let fault_ref = fault_state.as_ref();
        let per_kind = &per_kind;
        let result_rows = &result_rows;
        let record_error = &record_error;
        let mem_move = &mem_move;
        let gpu_nodes = &gpu_nodes;
        let graph_ref = graph;
        let staging_ref = staging.as_ref();
        let device_clocks = &device_clocks;
        let cost = &cost;
        let quota_groups = &quota_groups;
        let splitters = &splitters;
        // Cross-node control-plane traffic gauge (remote queue mutex
        // acquisitions), reported in the execution result.
        let remote_ctl = AtomicU64::new(0);
        let remote_ctl = &remote_ctl;

        // Route one produced block to `consumer`'s stage and enqueue it for
        // the chosen instance — the single downstream hand-off path shared by
        // source pumps, workers, finalize flushes and terminal emissions. In
        // governed mode the block is backed by a staging charge before it is
        // pushed: a byte admission into the chosen queue plus a `BlockLease`
        // on the consumer's memory node (acquired through the producer node's
        // remote cache when the two differ). The lease-ordering rule: any
        // charge the handle still carries is released *before* the new one is
        // acquired — a handle never holds staging on two nodes, so a device
        // crossing is release-on-source then acquire-on-destination, and a
        // full arena can only park a producer that holds nothing.
        let staging_budget = config.staging_bytes.unwrap_or(u64::MAX);
        let stage_charge = move |consumer: usize,
                                 pick: usize,
                                 source: MemoryNodeId,
                                 handle: &mut BlockHandle|
              -> Result<()> {
            let node = routing[consumer].instance_nodes[pick];
            if node != source {
                remote_ctl.fetch_add(1, Ordering::Relaxed);
            }
            let Some(staging) = staging_ref else { return Ok(()) };
            handle.take_staging();
            // A block wider than the whole arena (possible: the budget floor
            // is validated against an estimated tuple width, the arena
            // charges exact bytes) is charged the full arena instead of
            // erroring — it parks until the arena is completely free, then
            // flows alone, preserving the slow-but-alive contract for any
            // validated budget.
            let bytes = (handle.byte_size() as u64).min(staging_budget);
            if bytes == 0 {
                return Ok(());
            }
            let slot = queues[consumer][pick].admit(bytes)?;
            let lease = staging.acquire(
                source,
                node,
                bytes,
                ExhaustionPolicy::Park(STAGING_PARK_TIMEOUT),
            )?;
            handle.attach_staging(Arc::new(StagingCharge { _slot: slot, _lease: lease }));
            // Demand-weighted quota re-split (cost-model term 1): on the
            // node's cadence boundary, fold the freshly admitted bytes into
            // the per-queue demand EWMA and apply the new shares.
            if let Some(group) = quota_groups.iter().position(|(n, _)| *n == node) {
                let members = &quota_groups[group].1;
                let shares = splitters[group].lock().on_admission(
                    |i| {
                        let (s, q) = members[i];
                        queues[s][q].admitted_bytes_total()
                    },
                    staging_budget,
                    quota_floor,
                    cost,
                );
                if let Some(shares) = shares {
                    for (&(s, q), &share) in members.iter().zip(&shares) {
                        queues[s][q].set_byte_quota(share);
                    }
                }
            }
            Ok(())
        };
        let stage_charge = &stage_charge;

        // Estimated opening time of a stage's dependency gate (plus whether
        // it is still closed), consulted on every routing decision into that
        // stage: the partial floor of already-completed builds combined with
        // the cost model's estimate over the still-running builds — with
        // the critical-path term on, a build's estimate extends over its
        // whole transitive feed chain (the slowest feed's committed load),
        // not only its own committed device load. `(0, false)` for ungated
        // stages, so their routing is unchanged.
        let gate_estimate = move |consumer: usize| -> (u64, bool) {
            let deps = &graph_ref.stages[consumer].depends_on;
            if deps.is_empty() {
                return (0, false);
            }
            if gates[consumer].is_open() {
                return (gates[consumer].floor_ns(), false);
            }
            let ns = cost.gate_estimate_ns(
                deps,
                gates[consumer].floor_ns(),
                &|stage| routing.get(stage).map(|r| r.est.max_load()).unwrap_or(0),
                &graph_ref.wiring.feeds,
            );
            (ns, true)
        };
        let gate_estimate = &gate_estimate;
        let push_downstream = move |consumer: usize, block: BlockHandle| -> Result<()> {
            let source = block.meta().location;
            let (gate_ns, gate_pending) = gate_estimate(consumer);
            let (pick, mut localized) = self.route_and_localize(
                &routing[consumer],
                mem_move,
                gpu_nodes,
                block,
                SimTime::ZERO,
                staging_ref,
                gate_ns,
                gate_pending,
                cost,
                consumer,
                fault_ref,
            )?;
            stage_charge(consumer, pick, source, &mut localized)?;
            queues[consumer][pick].push(localized)
        };
        let push_downstream = &push_downstream;

        // Runs the completion protocol for a worker of `stage_idx`; the last
        // worker emits terminal results, pushes them downstream, releases the
        // producer registrations and opens dependent gates.
        let worker_finished = move |stage_idx: usize, last_end: SimTime| {
            let stage = &graph_ref.stages[stage_idx];
            {
                let mut done = progress[stage_idx].completion.lock();
                *done = done.max(last_end);
            }
            if progress[stage_idx].remaining.fetch_sub(1, Ordering::AcqRel) != 1 {
                return;
            }
            // Last worker: finish the stage.
            let completion = *progress[stage_idx].completion.lock();
            let had_error = first_error.lock().is_some();
            if !had_error {
                match self.emit_stage_results(stage, &graph_ref.state, completion, config) {
                    Ok((rows, blocks)) => {
                        if stage.is_result && !rows.is_empty() {
                            *result_rows.lock() = rows;
                        }
                        if let Some(consumer) = graph_ref.wiring.feeds[stage_idx] {
                            for block in blocks {
                                if let Err(e) = push_downstream(consumer, block) {
                                    record_error(e);
                                    break;
                                }
                            }
                        }
                    }
                    Err(e) => record_error(e),
                }
            }
            progress[stage_idx]
                .finished_wall
                .store(wall_start.elapsed().as_nanos() as u64, Ordering::Relaxed);
            // Terminate downstream consumers (producer_done via guard drop).
            progress[stage_idx].downstream_guards.lock().clear();
            // Open the gates of every stage waiting on this one.
            for &dependent in &graph_ref.wiring.unlocks[stage_idx] {
                gates[dependent].open(completion);
            }
        };
        let worker_finished = &worker_finished;

        std::thread::scope(|scope| {
            // Fault watchdog: spawned only when a plan is injected (healthy
            // runs pay nothing). Two jobs: (a) convert a wedged worker —
            // scripted onset passed, zero block progress across several
            // polls — into a quarantine after charging a simulated
            // detection budget, or into a structured `Wedged` error when
            // quarantine is disabled; (b) drive scripted arena bursts, the
            // co-tenant suddenly leasing staging out from under the query.
            if let Some(f) = fault_ref {
                scope.spawn(move || {
                    let mut stall: HashMap<usize, (u64, u32)> = HashMap::new();
                    let mut bursts: Vec<(usize, BlockLease)> = Vec::new();
                    while !progress.iter().all(|p| p.remaining.load(Ordering::Acquire) == 0) {
                        let frontier = device_clocks
                            .values()
                            .map(|c| c.now())
                            .fold(SimTime::ZERO, SimTime::max);
                        if config.fault.watchdog {
                            for dev_idx in 0..f.quarantined.len() {
                                let device = DeviceId::new(dev_idx);
                                let Some(at) = f.plan.wedge_at(device) else { continue };
                                if f.is_quarantined(device) {
                                    continue;
                                }
                                let Some(clock) = device_clocks.get(&device) else { continue };
                                if clock.now() < at {
                                    stall.remove(&dev_idx);
                                    continue;
                                }
                                let progressed = f.progressed[dev_idx].load(Ordering::Relaxed);
                                let entry = stall.entry(dev_idx).or_insert((progressed, 0));
                                if entry.0 == progressed {
                                    entry.1 += 1;
                                } else {
                                    *entry = (progressed, 0);
                                }
                                if entry.1 < WATCHDOG_STALL_POLLS {
                                    continue;
                                }
                                // Stalled past the onset long enough to
                                // call it wedged. Charge the detection
                                // budget in simulated time — a watchdog
                                // cannot tell silence from one slow block
                                // faster than two observed block costs —
                                // then quarantine (recovery) or surface the
                                // structured error (diagnosis only).
                                let avg = routing
                                    .iter()
                                    .flat_map(|r| {
                                        r.instance_devices.iter().enumerate().filter_map(
                                            |(s, d)| {
                                                (*d == device)
                                                    .then(|| r.observed_avg_cost(s))
                                                    .flatten()
                                            },
                                        )
                                    })
                                    .max()
                                    .unwrap_or(0);
                                let budget = WATCHDOG_DETECT_NS.max(2 * avg);
                                clock.reserve(at.add_nanos(budget), 0);
                                if config.fault.quarantine {
                                    f.quarantine(device);
                                } else {
                                    let mut reported = false;
                                    for (si, r) in routing.iter().enumerate() {
                                        for (sl, d) in r.instance_devices.iter().enumerate() {
                                            if *d != device {
                                                continue;
                                            }
                                            if !reported {
                                                reported = true;
                                                record_error(HetError::Wedged {
                                                    stage: si,
                                                    slot: sl,
                                                });
                                            }
                                            // Cascade: closing the wedged
                                            // slots' queues releases parked
                                            // producers and the spinning
                                            // worker itself.
                                            queues[si][sl].close();
                                        }
                                    }
                                }
                            }
                        }
                        if let Some(staging) = staging_ref {
                            for (i, burst) in f.plan.arena_bursts().iter().enumerate() {
                                let active = bursts.iter().any(|(b, _)| *b == i);
                                if !active && frontier >= burst.from && frontier < burst.until {
                                    if let Ok(manager) = staging.manager(burst.node) {
                                        // A burst takes what the arena has,
                                        // up to its scripted size: the
                                        // co-tenant competes for staging,
                                        // it does not deadlock the arena.
                                        let free = manager
                                            .capacity_bytes()
                                            .saturating_sub(manager.leased_bytes());
                                        let take = burst.bytes.min(free);
                                        if take > 0 {
                                            if let Ok(lease) = manager.acquire_local_labeled(
                                                take,
                                                ExhaustionPolicy::Error,
                                                "fault:burst",
                                            ) {
                                                bursts.push((i, lease));
                                            }
                                        }
                                    }
                                }
                            }
                            bursts.retain(|(i, _)| frontier < f.plan.arena_bursts()[*i].until);
                        }
                        std::thread::sleep(WATCHDOG_POLL);
                    }
                    // Leases drop here: a burst never outlives the run.
                    drop(bursts);
                });
            }

            // Source pumps: segment each scanned table and route its blocks
            // inline, the moment they exist. Transfers to (e.g.) GPU memory
            // are scheduled immediately, so they overlap whatever the gated
            // consumer is still waiting for — the paper's transfer/compute
            // overlap.
            for (idx, stage) in graph.stages.iter().enumerate() {
                let StageSource::Table { table, projection } = &stage.source else {
                    continue;
                };
                let pump_guards: Vec<ProducerGuard> =
                    queues[idx].iter().map(|q| q.register_producer()).collect();
                scope.spawn(move || {
                    let pump = || -> Result<()> {
                        let segments = self.table_segments(table, projection, catalog, config)?;
                        for handle in segments {
                            let source = handle.meta().location;
                            let (gate_ns, gate_pending) = gate_estimate(idx);
                            let (pick, mut localized) = self.route_and_localize(
                                &routing[idx],
                                mem_move,
                                gpu_nodes,
                                handle,
                                SimTime::ZERO,
                                staging_ref,
                                gate_ns,
                                gate_pending,
                                cost,
                                idx,
                                fault_ref,
                            )?;
                            // Byte-budget admission (parks on a full arena)
                            // and the bounded queue both exert back-pressure
                            // here.
                            stage_charge(idx, pick, source, &mut localized)?;
                            pump_guards[pick].push(localized)?;
                        }
                        Ok(())
                    };
                    if let Err(e) = pump() {
                        record_error(e);
                    }
                    // Guards drop → producer_done on every queue.
                });
            }

            // Consumer workers: one per pipeline instance of every stage, all
            // spawned up front.
            for (idx, stage) in graph.stages.iter().enumerate() {
                for (slot_idx, slot) in stage.consumers.iter().enumerate() {
                    let device_id = routing[idx].instance_devices[slot_idx];
                    let device_profile = match self.topology.device(device_id) {
                        Ok(p) => p.clone(),
                        Err(e) => {
                            record_error(e);
                            worker_finished(idx, SimTime::ZERO);
                            continue;
                        }
                    };
                    let clock = device_clocks.get(&device_id).expect("device clock exists").clone();
                    let pipeline = stage.template(slot.kind).clone();
                    let gpu = self.gpus.get(&device_id).cloned();
                    let kind = slot.kind;
                    let out_node = routing[idx].instance_nodes[slot_idx];
                    let queue = queues[idx][slot_idx].clone();
                    let state = &graph.state;

                    scope.spawn(move || {
                        let mut last_end = SimTime::ZERO;
                        let run = || -> Result<()> {
                            // Gate: a probe worker starts pulling only after
                            // its build stages signalled completion.
                            let gate_floor = gates[idx].wait();
                            last_end = gate_floor;

                            let mut ctx = match kind {
                                DeviceKind::Gpu => match gpu {
                                    Some(gpu) => ExecCtx::gpu(gpu, config.block_capacity),
                                    None => {
                                        return Err(HetError::Execution(format!(
                                            "stage {idx}: GPU instance without a device"
                                        )))
                                    }
                                },
                                DeviceKind::CpuCore => {
                                    ExecCtx::cpu(out_node, config.block_capacity)
                                }
                            }
                            .with_kernel_mode(config.kernel_mode);

                            let mut local_stats = DeviceKindStats::default();
                            let mut processed_any = false;
                            let steal_here = stage_steals[idx];
                            // Fault checkpoints engage only when an injected
                            // plan targets this worker's device; onsets are
                            // judged against the device's simulated clock.
                            let fault_here =
                                fault_ref.filter(|f| f.plan.targets_device(device_id));
                            let abort_at = fault_here.and_then(|f| f.plan.abort_at(device_id));
                            // A wedge is only observable (and survivable)
                            // through the watchdog; with the watchdog off
                            // the fault is not injected at all, so no
                            // configuration can turn it into a hang.
                            let wedge_at = fault_here
                                .filter(|_| config.fault.watchdog)
                                .and_then(|f| f.plan.wedge_at(device_id));
                            // Sim-paced claiming (steal-enabled stages only).
                            // Functional execution runs at wall speed, so a
                            // device that is slow on the *simulated* clock
                            // would still drain its queue as fast as any
                            // sibling — wall-time claiming hides exactly the
                            // backlog that adaptive re-routing exists to
                            // absorb. A worker whose observed slowdown
                            // (charged vs nominal busy, the straggler
                            // detector) exceeds STRAGGLER_RATIO therefore
                            // yields (bounded by MAX_CLAIM_YIELDS) instead of
                            // claiming the next block, leaving it in the
                            // queue where a healthy thief can profitably
                            // take it.
                            let mut last_busy: u64 = 0;
                            let mut claim_yields: usize = 0;
                            let straggling =
                                || cost.is_straggler(routing[idx].observed_slowdown(slot_idx));
                            loop {
                                // Fault ladder, pre-claim: a dying device
                                // must not claim a block it cannot finish.
                                if let Some(f) = fault_here {
                                    if !f.is_quarantined(device_id)
                                        && abort_at.is_some_and(|at| clock.now() >= at)
                                    {
                                        // Permanent abort: the device dies
                                        // the moment its clock crosses the
                                        // scripted onset.
                                        f.quarantine(device_id);
                                    }
                                    if !f.is_quarantined(device_id)
                                        && wedge_at.is_some_and(|at| clock.now() >= at)
                                    {
                                        // Wedged: silently stop making
                                        // progress. Only the watchdog's
                                        // stall detector quarantines us out
                                        // of this spin; a run that fails
                                        // elsewhere releases the worker
                                        // through the error cascade with a
                                        // structured diagnosis.
                                        while !f.is_quarantined(device_id) {
                                            if queue.is_closed()
                                                || first_error.lock().is_some()
                                            {
                                                return Err(HetError::Wedged {
                                                    stage: idx,
                                                    slot: slot_idx,
                                                });
                                            }
                                            std::thread::sleep(WATCHDOG_POLL);
                                        }
                                    }
                                    if f.is_quarantined(device_id) {
                                        // Bank what this device completed,
                                        // then re-home the rest of its
                                        // stream on a surviving sibling (or
                                        // escalate to a degraded restart).
                                        {
                                            let mut kinds = per_kind.lock();
                                            let entry = kinds.entry(kind).or_default();
                                            entry.blocks += local_stats.blocks;
                                            entry.busy_ns += local_stats.busy_ns;
                                            entry.bytes_scanned += local_stats.bytes_scanned;
                                        }
                                        last_end = self.drain_on_survivor(
                                            f,
                                            &routing[idx],
                                            idx,
                                            slot_idx,
                                            stage_anonymous[idx],
                                            None,
                                            &pipeline,
                                            &mut ctx,
                                            &queue,
                                            device_clocks,
                                            mem_move,
                                            staging_ref,
                                            staging_budget,
                                            cost,
                                            config,
                                            state,
                                            per_kind,
                                            graph_ref.wiring.feeds[idx],
                                            &|c, b| push_downstream(c, b),
                                            last_end,
                                        )?;
                                        return Ok(());
                                    }
                                }
                                // Claim pacing, part one: with backlog
                                // already visible, a sim-behind worker
                                // sleeps *without touching the queue* — the
                                // blocks keep their order and stay stealable.
                                if steal_here
                                    && last_busy > 0
                                    && claim_yields < MAX_CLAIM_YIELDS
                                    && !queue.is_empty()
                                    && straggling()
                                {
                                    claim_yields += 1;
                                    std::thread::sleep(STEAL_POLL);
                                    continue;
                                }
                                // Late binding: an idle worker (empty queue,
                                // or its stream already over) rescues the
                                // tail of an overloaded sibling's backlog
                                // instead of parking/exiting while a
                                // straggler holds blocks hostage.
                                let block = if steal_here {
                                    match queue.pop_timeout(STEAL_POLL) {
                                        PopNext::Block(block) => {
                                            // Claim pacing, part two: a block
                                            // that arrived while this worker
                                            // was parked in pop was claimed
                                            // before part one could see it —
                                            // if the device is sim-behind its
                                            // siblings, un-claim it (back to
                                            // the queue tail, where thieves
                                            // look) and yield, bounded by
                                            // MAX_CLAIM_YIELDS so progress
                                            // never stalls when no sibling
                                            // finds the backlog profitable.
                                            if last_busy > 0
                                                && claim_yields < MAX_CLAIM_YIELDS
                                                && straggling()
                                            {
                                                // A refused give-back means
                                                // the queue closed: drop the
                                                // block like close()'s sweep.
                                                let _ = queue.give_back(block);
                                                claim_yields += 1;
                                                std::thread::sleep(STEAL_POLL);
                                                continue;
                                            }
                                            block
                                        }
                                        next @ (PopNext::Empty | PopNext::Finished) => {
                                            let own_finished =
                                                matches!(next, PopNext::Finished);
                                            match self.steal_for(
                                                &routing[idx],
                                                &queues[idx],
                                                slot_idx,
                                                &clock,
                                                device_clocks,
                                                mem_move,
                                                staging_ref,
                                                staging_budget,
                                                cost,
                                                fault_ref,
                                            )? {
                                                StealOutcome::Stolen(block) => {
                                                    progress[idx]
                                                        .blocks_stolen
                                                        .fetch_add(1, Ordering::Relaxed);
                                                    block
                                                }
                                                StealOutcome::Unprofitable => {
                                                    // A sibling backlog may
                                                    // turn profitable as the
                                                    // victim's clock advances;
                                                    // pace the recheck when
                                                    // pop no longer waits (a
                                                    // finished stream returns
                                                    // immediately).
                                                    if own_finished {
                                                        std::thread::sleep(STEAL_POLL);
                                                    }
                                                    continue;
                                                }
                                                StealOutcome::Nothing => {
                                                    if own_finished {
                                                        break;
                                                    }
                                                    continue;
                                                }
                                            }
                                        }
                                    }
                                } else {
                                    match queue.pop() {
                                        Some(block) => block,
                                        None => break,
                                    }
                                };
                                if !processed_any {
                                    processed_any = true;
                                    progress[idx].record_first_block(
                                        wall_start.elapsed().as_nanos() as u64,
                                    );
                                }
                                let ready =
                                    SimTime::from_nanos(block.meta().ready_at_ns).max(gate_floor);
                                // Fault ladder, per-invocation: transient
                                // kernel failures draw deterministically
                                // from the plan, *before* the kernel runs —
                                // kernels are transactional at block
                                // granularity, so a failed invocation left
                                // no partial state and the block simply
                                // re-runs. Each retry charges a doubling
                                // slice of simulated backoff; past the
                                // budget the device is declared lost and
                                // the claimed block leads the re-homed
                                // stream.
                                if let Some(f) = fault_here {
                                    let mut attempt = 0u32;
                                    loop {
                                        let invocation = f.next_invocation(device_id);
                                        if !f.plan.transient_failure(
                                            device_id,
                                            clock.now(),
                                            invocation,
                                        ) {
                                            break;
                                        }
                                        if !config.fault.transient_retry
                                            || attempt >= TRANSIENT_RETRY_BUDGET
                                        {
                                            f.quarantine(device_id);
                                            break;
                                        }
                                        f.retries.fetch_add(1, Ordering::Relaxed);
                                        let backoff = TRANSIENT_RETRY_BASE_NS << attempt;
                                        let (_, end) = clock.reserve(SimTime::ZERO, backoff);
                                        last_end = last_end.max(end);
                                        attempt += 1;
                                    }
                                    if f.is_quarantined(device_id) {
                                        {
                                            let mut kinds = per_kind.lock();
                                            let entry = kinds.entry(kind).or_default();
                                            entry.blocks += local_stats.blocks;
                                            entry.busy_ns += local_stats.busy_ns;
                                            entry.bytes_scanned += local_stats.bytes_scanned;
                                        }
                                        last_end = self.drain_on_survivor(
                                            f,
                                            &routing[idx],
                                            idx,
                                            slot_idx,
                                            stage_anonymous[idx],
                                            Some(block),
                                            &pipeline,
                                            &mut ctx,
                                            &queue,
                                            device_clocks,
                                            mem_move,
                                            staging_ref,
                                            staging_budget,
                                            cost,
                                            config,
                                            state,
                                            per_kind,
                                            graph_ref.wiring.feeds[idx],
                                            &|c, b| push_downstream(c, b),
                                            last_end,
                                        )?;
                                        return Ok(());
                                    }
                                }
                                let out = pipeline.process_block(&block, state, &mut ctx)?;
                                let (end, busy) =
                                    self.charge(&clock, &device_profile, &out.work, ready);
                                last_end = last_end.max(end);
                                last_busy = busy;
                                claim_yields = 0;
                                // Feed the straggler detector: what this
                                // block actually cost vs what the nominal
                                // model prices for the same work. The same
                                // observation feeds the shared per-device
                                // slowdown EWMA that routing projections
                                // consume (the calibration loop).
                                let nominal_ns =
                                    self.work_cost.time_ns(&out.work, &device_profile);
                                cost.observe(device_id.index(), busy, nominal_ns);
                                routing[idx].charged_busy[slot_idx]
                                    .fetch_add(busy, Ordering::Relaxed);
                                routing[idx].nominal_busy[slot_idx]
                                    .fetch_add(nominal_ns, Ordering::Relaxed);
                                routing[idx].processed[slot_idx].fetch_add(1, Ordering::Relaxed);
                                if let Some(f) = fault_here {
                                    // The watchdog's stall detector reads
                                    // this: a wedged device stops ticking.
                                    f.note_progress(device_id);
                                }
                                local_stats.busy_ns += busy;
                                local_stats.blocks += 1;
                                local_stats.bytes_scanned += out.work.bytes_scanned;
                                // Actual per-stage selectivity observability:
                                // physical rows in and out of this stage.
                                progress[idx]
                                    .rows_in
                                    .fetch_add(out.counters.rows_in, Ordering::Relaxed);
                                progress[idx]
                                    .rows_out
                                    .fetch_add(out.counters.rows_emitted, Ordering::Relaxed);
                                // Lease-ordering rule: release the input
                                // block's staging charge before acquiring
                                // charges for its outputs. The data this
                                // worker still needs has been copied into its
                                // packed output buffers, so the consumed
                                // block's staging bytes are free the moment
                                // processing ends — and a worker that holds
                                // no lease while it parks on a downstream
                                // acquisition cannot be part of a hold-and-
                                // wait cycle.
                                drop(block);
                                for mut produced in out.blocks {
                                    produced.meta_mut().ready_at_ns = end.as_nanos();
                                    if let Some(consumer) = graph_ref.wiring.feeds[idx] {
                                        push_downstream(consumer, produced)?;
                                    }
                                }
                            }

                            // Flush partially filled packed outputs.
                            let out = pipeline.finalize_instance(&mut ctx)?;
                            if !out.work.is_empty() {
                                let (end, busy) =
                                    self.charge(&clock, &device_profile, &out.work, last_end);
                                last_end = last_end.max(end);
                                local_stats.busy_ns += busy;
                            }
                            // Rows flushed by the finalize pass (terminal
                            // emissions, partially filled packed outputs)
                            // count toward the stage's emitted rows; nothing
                            // *entered* during finalize.
                            progress[idx]
                                .rows_out
                                .fetch_add(out.counters.rows_emitted, Ordering::Relaxed);
                            for mut produced in out.blocks {
                                produced.meta_mut().ready_at_ns = last_end.as_nanos();
                                if let Some(consumer) = graph_ref.wiring.feeds[idx] {
                                    push_downstream(consumer, produced)?;
                                }
                            }

                            if trace {
                                eprintln!(
                                    "[trace] stage {idx} dev {device_id:?} blocks {} busy {:.1}ms last_end {} clock {}",
                                    local_stats.blocks,
                                    local_stats.busy_ns as f64 / 1e6,
                                    last_end,
                                    clock.now()
                                );
                            }
                            {
                                let mut kinds = per_kind.lock();
                                let entry = kinds.entry(kind).or_default();
                                entry.blocks += local_stats.blocks;
                                entry.busy_ns += local_stats.busy_ns;
                                entry.bytes_scanned += local_stats.bytes_scanned;
                            }
                            Ok(())
                        };
                        // A panic must not skip the completion protocol:
                        // without the worker_finished call the stage's
                        // remaining-count never reaches zero, dependent gates
                        // never open, and the whole query deadlocks instead
                        // of reporting the failure.
                        let outcome =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(run));
                        match outcome {
                            Ok(Ok(())) => {}
                            Ok(Err(e)) => {
                                record_error(e);
                                // Unblock the producer pushing into this
                                // worker and cascade shutdown upstream.
                                queue.close();
                            }
                            Err(_) => {
                                record_error(HetError::Execution(format!(
                                    "stage {idx} worker panicked"
                                )));
                                queue.close();
                            }
                        }
                        worker_finished(idx, last_end);
                    });
                }
            }
        });

        if let Some(err) = first_error.lock().take() {
            // Account the progress this attempt burned before failing — the
            // same completion fold the success path reports — so a degraded
            // restart can report honest all-attempt simulated time.
            let mut reached =
                progress.iter().map(|p| *p.completion.lock()).fold(SimTime::ZERO, SimTime::max);
            if graph.stages.iter().any(|s| s.has_router) {
                reached = reached.add_nanos(ROUTER_INIT_OVERHEAD.as_nanos());
            }
            *self.failed_sim_time.lock() = Some(reached);
            return Err(err);
        }

        let any_router = graph.stages.iter().any(|s| s.has_router);
        let mut sim_time =
            progress.iter().map(|p| *p.completion.lock()).fold(SimTime::ZERO, SimTime::max);
        if any_router {
            sim_time = sim_time.add_nanos(ROUTER_INIT_OVERHEAD.as_nanos());
        }

        let rows = std::mem::take(&mut *result_rows.lock());
        let per_kind = std::mem::take(&mut *per_kind.lock());
        // Return prefetched remote leases to their home arenas, then read the
        // per-node high-water marks for the staging-invariant tests.
        let staging_peaks = staging
            .as_ref()
            .map(|s| {
                s.flush_remote_caches();
                s.peaks()
            })
            .unwrap_or_default();
        // Leak check (after the flush): every handle was dropped and every
        // cached lease went home, so any byte still leased was stranded by
        // a recovery path — the chaos suite asserts this stays zero.
        let staging_leaked_bytes = staging.as_ref().map(|s| s.leased_bytes_total()).unwrap_or(0);
        Ok(ExecutionResult {
            rows,
            sim_time,
            wall_time: wall_start.elapsed(),
            per_kind,
            bytes_transferred: mem_move.dma().stats().bytes_moved,
            stage_timeline: progress.iter().map(StageProgress::timeline).collect(),
            stage_completion: progress.iter().map(|p| *p.completion.lock()).collect(),
            staging_peaks,
            blocks_stolen: progress
                .iter()
                .map(|p| p.blocks_stolen.load(Ordering::Relaxed))
                .collect(),
            remote_control_acquisitions: remote_ctl.load(Ordering::Relaxed),
            observed_slowdowns: observer.snapshot(),
            probed_constants: Some(Arc::clone(&self.probed_constants)),
            transient_retries: fault_state
                .as_ref()
                .map(|f| f.retries.load(Ordering::Relaxed))
                .unwrap_or(0),
            recovered_blocks: fault_state
                .as_ref()
                .map(|f| f.recovered.load(Ordering::Relaxed))
                .unwrap_or(0),
            staging_leaked_bytes,
            stage_rows: progress
                .iter()
                .map(|p| (p.rows_in.load(Ordering::Relaxed), p.rows_out.load(Ordering::Relaxed)))
                .collect(),
        })
    }

    // ------------------------------------------------------------------
    // Stage-at-a-time executor (legacy, kept for A/B comparison)
    // ------------------------------------------------------------------

    fn execute_stage_at_a_time(
        &self,
        graph: &StageGraph,
        catalog: &Catalog,
        config: &EngineConfig,
    ) -> Result<ExecutionResult> {
        let wall_start = Instant::now();
        self.topology.reset_clocks();
        let dma = DmaEngine::new(Arc::clone(&self.topology));
        let mem_move = MemMove::new(dma);
        let device_clocks = self.device_clocks();
        let trace = std::env::var("HETEX_TRACE_EXEC").is_ok();

        let any_router = graph.stages.iter().any(|s| s.has_router);
        let mut stage_outputs: Vec<Vec<BlockHandle>> = Vec::with_capacity(graph.stages.len());
        let mut stage_completion: Vec<SimTime> = Vec::with_capacity(graph.stages.len());
        let mut timeline: Vec<StageTimeline> = Vec::with_capacity(graph.stages.len());
        let mut per_kind: HashMap<DeviceKind, DeviceKindStats> = HashMap::new();
        let mut result_rows: Vec<Vec<i64>> = Vec::new();
        let mut stage_rows: Vec<(u64, u64)> = Vec::with_capacity(graph.stages.len());
        // The materialization barrier: a stage-at-a-time engine runs one
        // stage at a time, so stage k (and its transfers) cannot start
        // before stage k-1 finished — its simulated time honestly pays the
        // sum of stage latencies instead of a pipelined critical path.
        let mut barrier = SimTime::ZERO;

        let mut run_stages = || -> Result<()> {
            for (stage_idx, stage) in graph.stages.iter().enumerate() {
                let inputs: Vec<BlockHandle> = match &stage.source {
                    StageSource::Table { table, projection } => {
                        self.table_segments(table, projection, catalog, config)?
                    }
                    StageSource::Stage(idx) => {
                        stage_outputs.get(*idx).cloned().ok_or_else(|| {
                            HetError::Execution(format!("stage {idx} has no outputs yet"))
                        })?
                    }
                };

                // A probe stage additionally cannot start before the hash
                // tables it reads are fully built.
                let floor = stage
                    .depends_on
                    .iter()
                    .map(|&d| stage_completion.get(d).copied().unwrap_or(SimTime::ZERO))
                    .fold(barrier, SimTime::max);

                let outcome = self.run_stage(
                    stage,
                    stage_idx,
                    inputs,
                    floor,
                    &graph.state,
                    &mem_move,
                    &device_clocks,
                    config,
                    trace,
                    wall_start,
                )?;

                for (kind, s) in outcome.per_kind {
                    let entry = per_kind.entry(kind).or_default();
                    entry.blocks += s.blocks;
                    entry.busy_ns += s.busy_ns;
                    entry.bytes_scanned += s.bytes_scanned;
                }
                if stage.is_result {
                    result_rows = outcome.result_rows;
                }
                barrier = barrier.max(outcome.completion);
                stage_completion.push(outcome.completion);
                stage_outputs.push(outcome.outputs);
                timeline.push(outcome.timeline);
                stage_rows.push((outcome.rows_in, outcome.rows_out));
            }
            Ok(())
        };
        if let Err(e) = run_stages() {
            // A mid-query failure burned at least the materialization barrier
            // — the simulated time every completed stage has paid. A failing
            // stage's own partial completion, when a deeper path captured it,
            // max-merges with the barrier rather than being overwritten.
            self.record_burned(barrier);
            return Err(e);
        }

        let mut sim_time = stage_completion.iter().copied().fold(SimTime::ZERO, SimTime::max);
        if any_router {
            sim_time = sim_time.add_nanos(ROUTER_INIT_OVERHEAD.as_nanos());
        }

        Ok(ExecutionResult {
            rows: result_rows,
            sim_time,
            wall_time: wall_start.elapsed(),
            per_kind,
            bytes_transferred: mem_move.dma().stats().bytes_moved,
            stage_timeline: timeline,
            stage_completion,
            staging_peaks: Vec::new(),
            blocks_stolen: vec![0; graph.stages.len()],
            remote_control_acquisitions: 0,
            observed_slowdowns: Vec::new(),
            probed_constants: None,
            transient_retries: 0,
            recovered_blocks: 0,
            staging_leaked_bytes: 0,
            stage_rows,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn run_stage(
        &self,
        stage: &Stage,
        stage_idx: usize,
        inputs: Vec<BlockHandle>,
        floor: SimTime,
        state: &SharedState,
        mem_move: &MemMove,
        device_clocks: &HashMap<DeviceId, ResourceClock>,
        config: &EngineConfig,
        trace: bool,
        wall_start: Instant,
    ) -> Result<StageOutcome> {
        let routing = self.stage_routing(stage)?;
        let gpu_nodes = self.topology.gpu_memory_nodes();
        // The legacy executor routes with every cost-model refinement off:
        // stage-at-a-time is the bit-stable differential baseline the
        // cost-model toggles are tested against, so its routing must not
        // move when terms are toggled.
        let cost = CostModel::legacy();

        // Routing pass: distribute block handles (control plane only), then
        // let mem-move localize the data for the chosen instance. Serial, and
        // floored at the materialization barrier: neither routing nor the
        // transfers it schedules can precede the stage's start.
        let mut instance_inputs: Vec<Vec<BlockHandle>> = vec![Vec::new(); stage.consumers.len()];
        for handle in inputs {
            // No gate term (0, not pending): the materialization barrier
            // already floors the whole stage at its dependencies' completion,
            // so legacy routing stays exactly as it was.
            // No fault plan either: stage-at-a-time is the bit-identical
            // correctness baseline fault recovery is verified against, so
            // it must never observe injected faults.
            let (pick, localized) = self.route_and_localize(
                &routing, mem_move, &gpu_nodes, handle, floor, None, 0, false, &cost, stage_idx,
                None,
            )?;
            instance_inputs[pick].push(localized);
        }

        // Processing pass: one host thread per instance.
        let outputs: Mutex<Vec<BlockHandle>> = Mutex::new(Vec::new());
        let per_kind: Mutex<HashMap<DeviceKind, DeviceKindStats>> = Mutex::new(HashMap::new());
        let completion: Mutex<SimTime> = Mutex::new(floor);
        let first_error: Mutex<Option<HetError>> = Mutex::new(None);
        let first_block_wall = AtomicU64::new(u64::MAX);
        let stage_rows_in = AtomicU64::new(0);
        let stage_rows_out = AtomicU64::new(0);

        std::thread::scope(|scope| {
            for (slot_idx, slot) in stage.consumers.iter().enumerate() {
                let my_blocks = std::mem::take(&mut instance_inputs[slot_idx]);
                if my_blocks.is_empty() {
                    continue;
                }
                let device_id = routing.instance_devices[slot_idx];
                let device_profile = match self.topology.device(device_id) {
                    Ok(p) => p.clone(),
                    Err(e) => {
                        *first_error.lock() = Some(e);
                        continue;
                    }
                };
                let clock = device_clocks.get(&device_id).expect("device clock exists").clone();
                let pipeline = stage.template(slot.kind).clone();
                let gpu = self.gpus.get(&device_id).cloned();
                let outputs = &outputs;
                let per_kind = &per_kind;
                let completion = &completion;
                let first_error = &first_error;
                let first_block_wall = &first_block_wall;
                let stage_rows_in = &stage_rows_in;
                let stage_rows_out = &stage_rows_out;
                let kind = slot.kind;
                let out_node = routing.instance_nodes[slot_idx];
                let block_capacity = config.block_capacity;
                let kernel_mode = config.kernel_mode;

                scope.spawn(move || {
                    let mut ctx = match kind {
                        DeviceKind::Gpu => match gpu {
                            Some(gpu) => ExecCtx::gpu(gpu, block_capacity),
                            None => {
                                *first_error.lock() = Some(HetError::Execution(format!(
                                    "stage {stage_idx}: GPU instance without a device"
                                )));
                                return;
                            }
                        },
                        DeviceKind::CpuCore => ExecCtx::cpu(out_node, block_capacity),
                    }
                    .with_kernel_mode(kernel_mode);

                    let mut local_stats = DeviceKindStats::default();
                    let mut local_outputs: Vec<BlockHandle> = Vec::new();
                    let mut last_end = floor;
                    let mut processed_any = false;

                    for block in my_blocks {
                        if !processed_any {
                            processed_any = true;
                            let _ = first_block_wall
                                .fetch_min(wall_start.elapsed().as_nanos() as u64, Ordering::Relaxed);
                        }
                        let ready = SimTime::from_nanos(block.meta().ready_at_ns).max(floor);
                        match pipeline.process_block(&block, state, &mut ctx) {
                            Ok(out) => {
                                let (end, busy) =
                                    self.charge(&clock, &device_profile, &out.work, ready);
                                last_end = last_end.max(end);
                                local_stats.busy_ns += busy;
                                local_stats.blocks += 1;
                                local_stats.bytes_scanned += out.work.bytes_scanned;
                                stage_rows_in
                                    .fetch_add(out.counters.rows_in, Ordering::Relaxed);
                                stage_rows_out
                                    .fetch_add(out.counters.rows_emitted, Ordering::Relaxed);
                                for mut produced in out.blocks {
                                    produced.meta_mut().ready_at_ns = end.as_nanos();
                                    local_outputs.push(produced);
                                }
                            }
                            Err(e) => {
                                let mut slot = first_error.lock();
                                if slot.is_none() {
                                    *slot = Some(e);
                                }
                                return;
                            }
                        }
                    }

                    // Flush partially filled packed outputs.
                    match pipeline.finalize_instance(&mut ctx) {
                        Ok(out) => {
                            if !out.work.is_empty() {
                                let (end, busy) =
                                    self.charge(&clock, &device_profile, &out.work, last_end);
                                last_end = last_end.max(end);
                                local_stats.busy_ns += busy;
                            }
                            stage_rows_out
                                .fetch_add(out.counters.rows_emitted, Ordering::Relaxed);
                            for mut produced in out.blocks {
                                produced.meta_mut().ready_at_ns = last_end.as_nanos();
                                local_outputs.push(produced);
                            }
                        }
                        Err(e) => {
                            let mut slot = first_error.lock();
                            if slot.is_none() {
                                *slot = Some(e);
                            }
                            return;
                        }
                    }

                    if trace {
                        eprintln!(
                            "[trace] stage {stage_idx} dev {device_id:?} blocks {} busy {:.1}ms last_end {} clock {}",
                            local_stats.blocks,
                            local_stats.busy_ns as f64 / 1e6,
                            last_end,
                            clock.now()
                        );
                    }
                    outputs.lock().extend(local_outputs);
                    {
                        let mut kinds = per_kind.lock();
                        let entry = kinds.entry(kind).or_default();
                        entry.blocks += local_stats.blocks;
                        entry.busy_ns += local_stats.busy_ns;
                        entry.bytes_scanned += local_stats.bytes_scanned;
                    }
                    let mut done = completion.lock();
                    *done = done.max(last_end).max(clock.now());
                });
            }
        });

        if let Some(err) = first_error.lock().take() {
            // How far this attempt simulated before failing (the stage floor
            // already folds in every completed stage), for the engine's
            // per-attempt accounting.
            let reached = *completion.lock();
            let mut failed = self.failed_sim_time.lock();
            *failed = Some(failed.map_or(reached, |t| t.max(reached)));
            return Err(err);
        }

        let completion = *completion.lock();
        let mut outputs = outputs.into_inner();

        // Emit reduce / group-by results exactly once per stage, on a CPU
        // context (the paper's final single-instance gather pipeline).
        let (result_rows, emitted_blocks) =
            self.emit_stage_results(stage, state, completion, config)?;
        outputs.extend(emitted_blocks);

        let first = first_block_wall.load(Ordering::Relaxed);
        Ok(StageOutcome {
            outputs,
            completion,
            per_kind: per_kind.into_inner(),
            result_rows,
            timeline: StageTimeline {
                first_block_wall_ns: (first != u64::MAX).then_some(first),
                finished_wall_ns: wall_start.elapsed().as_nanos() as u64,
            },
            rows_in: stage_rows_in.load(Ordering::Relaxed),
            rows_out: stage_rows_out.load(Ordering::Relaxed),
        })
    }
}

struct StageOutcome {
    outputs: Vec<BlockHandle>,
    completion: SimTime,
    per_kind: HashMap<DeviceKind, DeviceKindStats>,
    result_rows: Vec<Vec<i64>>,
    timeline: StageTimeline,
    rows_in: u64,
    rows_out: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::compile;
    use hetex_common::{ColumnData, DataType};
    use hetex_core::{parallelize, RelNode};
    use hetex_jit::{AggSpec, Expr};
    use hetex_storage::TableBuilder;

    fn catalog_with_data(topology: &ServerTopology, rows: usize) -> Catalog {
        let catalog = Catalog::new();
        let nodes = topology.cpu_memory_nodes();
        let fact = TableBuilder::new("fact")
            .column(
                "key",
                DataType::Int32,
                ColumnData::Int32((0..rows as i32).map(|i| i % 100).collect()),
            )
            .column("value", DataType::Int64, ColumnData::Int64((0..rows as i64).collect()))
            .build(&nodes, 4096)
            .unwrap();
        let dim = TableBuilder::new("dim")
            .column("k", DataType::Int32, ColumnData::Int32((0..100).collect()))
            .column("attr", DataType::Int32, ColumnData::Int32((0..100).map(|i| i % 7).collect()))
            .build(&nodes, 4096)
            .unwrap();
        catalog.register(fact);
        catalog.register(dim);
        catalog
    }

    fn join_sum_plan() -> RelNode {
        // SELECT SUM(value) FROM fact JOIN dim ON key = k WHERE attr < 3
        let dim = RelNode::scan("dim", &["k", "attr"]).filter(Expr::col(1).lt_lit(3));
        RelNode::scan("fact", &["key", "value"])
            .hash_join(dim, 0, 0, &[1])
            .reduce(vec![AggSpec::sum(Expr::col(1)), AggSpec::count()], &["sum_v", "cnt"])
    }

    fn expected(rows: usize) -> (i64, i64) {
        let mut sum = 0i64;
        let mut cnt = 0i64;
        for i in 0..rows as i64 {
            let key = i % 100;
            if key % 7 < 3 {
                sum += i;
                cnt += 1;
            }
        }
        (sum, cnt)
    }

    fn run(config: &EngineConfig, rows: usize) -> ExecutionResult {
        let topology = ServerTopology::paper_server();
        let catalog = catalog_with_data(&topology, rows);
        let het = parallelize(&join_sum_plan(), config).unwrap();
        let graph = compile(&het, config, &topology).unwrap();
        let executor = Executor::new(topology);
        executor.execute(&graph, &catalog, config).unwrap()
    }

    #[test]
    fn cpu_only_execution_is_correct() {
        let result = run(&EngineConfig::cpu_only(4), 50_000);
        let (sum, cnt) = expected(50_000);
        assert_eq!(result.rows, vec![vec![sum, cnt]]);
        assert!(result.sim_time > SimTime::ZERO);
        assert!(result.per_kind.contains_key(&DeviceKind::CpuCore));
        assert!(!result.per_kind.contains_key(&DeviceKind::Gpu));
    }

    #[test]
    fn gpu_only_execution_matches_cpu_results() {
        let gpu = run(&EngineConfig::gpu_only(2), 50_000);
        let cpu = run(&EngineConfig::cpu_only(4), 50_000);
        assert_eq!(gpu.rows, cpu.rows);
        assert!(gpu.per_kind.contains_key(&DeviceKind::Gpu));
        // Data started CPU-resident, so bytes had to cross PCIe.
        assert!(gpu.bytes_transferred > 0.0);
    }

    #[test]
    fn hybrid_execution_uses_both_device_kinds() {
        let result = run(&EngineConfig::hybrid(8, 2), 200_000);
        let (sum, cnt) = expected(200_000);
        assert_eq!(result.rows, vec![vec![sum, cnt]]);
        let cpu_blocks = result.per_kind.get(&DeviceKind::CpuCore).map_or(0, |s| s.blocks);
        let gpu_blocks = result.per_kind.get(&DeviceKind::Gpu).map_or(0, |s| s.blocks);
        assert!(cpu_blocks > 0, "CPU should receive some blocks");
        assert!(gpu_blocks > 0, "GPUs should receive some blocks");
    }

    #[test]
    fn more_cpu_cores_reduce_simulated_time() {
        let one = run(&EngineConfig::cpu_only(1), 200_000);
        let eight = run(&EngineConfig::cpu_only(8), 200_000);
        assert!(
            eight.sim_time < one.sim_time,
            "8 cores ({}) should beat 1 core ({})",
            eight.sim_time,
            one.sim_time
        );
    }

    #[test]
    fn router_overhead_is_charged_once() {
        let mut without = EngineConfig::cpu_only(1);
        without.hetexchange_enabled = false;
        let seq = run(&without, 20_000);
        let with = run(&EngineConfig::cpu_only(1), 20_000);
        let diff = with.sim_time.as_nanos() as i64 - seq.sim_time.as_nanos() as i64;
        assert!(
            diff >= ROUTER_INIT_OVERHEAD.as_nanos() as i64 / 2,
            "router overhead missing: {diff}"
        );
        assert_eq!(seq.rows, with.rows);
    }

    #[test]
    fn governed_pipelined_respects_the_staging_budget() {
        // Hybrid so blocks cross to GPU memory nodes (lease transfer across a
        // device crossing) with a deliberately modest budget.
        let mut config = EngineConfig::hybrid(4, 2);
        config.block_capacity = 1024;
        let budget = config.min_staging_bytes() * 4;
        config.staging_bytes = Some(budget);
        let governed = run(&config, 100_000);
        let (sum, cnt) = expected(100_000);
        assert_eq!(governed.rows, vec![vec![sum, cnt]]);
        assert!(!governed.staging_peaks.is_empty(), "governed mode reports per-node peaks");
        for (node, peak) in &governed.staging_peaks {
            assert!(peak <= &budget, "node {node} peaked at {peak} > budget {budget}");
        }
        assert!(
            governed.staging_peaks.iter().any(|(_, peak)| *peak > 0),
            "pipelined blocks must be backed by leases: no node ever staged bytes"
        );

        // Ungoverned mode (PR 1 behaviour) reports no peaks and agrees on rows.
        let ungoverned = run(&config.clone().with_staging_bytes(None), 100_000);
        assert!(ungoverned.staging_peaks.is_empty());
        assert_eq!(governed.rows, ungoverned.rows);

        // Stage-at-a-time mode is not byte-governed.
        let saat = run(&config.clone().with_execution_mode(ExecutionMode::StageAtATime), 100_000);
        assert!(saat.staging_peaks.is_empty());
        assert_eq!(governed.rows, saat.rows);
    }

    #[test]
    fn a_block_wider_than_the_arena_still_flows() {
        // The budget floor is validated against an *estimated* tuple width;
        // real blocks can be wider. A budget smaller than a single block must
        // serialize the pipeline (each block charged the full arena), not
        // kill it with a can-never-fit error.
        let topology = ServerTopology::paper_server();
        let catalog = catalog_with_data(&topology, 50_000);
        let plan = RelNode::scan("fact", &["key", "value"])
            .reduce(vec![AggSpec::sum(Expr::col(1)), AggSpec::count()], &["sum_v", "cnt"]);
        let mut config = EngineConfig::cpu_only(2);
        config.block_capacity = 1024;
        let het = parallelize(&plan, &config).unwrap();
        let graph = compile(&het, &config, &topology).unwrap();
        // Shrink the budget below one block's ~12 KiB only for execution:
        // validation (rightly) rejects it, but the executor must still
        // degrade to serialized flow rather than a can-never-fit error.
        config.staging_bytes = Some(1024);
        let executor = Executor::new(topology);
        let result = executor.execute(&graph, &catalog, &config).unwrap();
        let sum: i64 = (0..50_000i64).sum();
        assert_eq!(result.rows, vec![vec![sum, 50_000]]);
        for (node, peak) in &result.staging_peaks {
            assert!(*peak <= 1024, "node {node} peaked at {peak} > clamped budget 1024");
        }
    }

    #[test]
    fn stealing_rescues_a_straggler_and_preserves_rows() {
        // One GPU is a hidden 8x straggler: the router keeps pricing its
        // nominal profile, so its queue backs up. With stealing, siblings
        // drain the backlog; the rows must be identical either way and the
        // skewed run must get faster, not slower.
        let topology = ServerTopology::paper_server();
        let slow_gpu = topology.gpus()[1];
        let skewed = topology.with_device_slowdown(slow_gpu, 8.0).unwrap();
        let catalog = catalog_with_data(&skewed, 200_000);
        let mut config = EngineConfig::hybrid(8, 2);
        config.scale_weight = 20_000.0;
        let het = parallelize(&join_sum_plan(), &config).unwrap();
        let executor = Executor::new(Arc::clone(&skewed));

        // One freshly compiled graph per execution: the compiled graph owns
        // the query's shared state (hash tables, accumulators), which is
        // populated by a run. The end-to-end comparison uses the median of
        // three measurements per side — when stealing engages is wall-clock
        // sensitive (observed-slowdown EWMAs), so a single run under CPU
        // contention can land in a scheduler tail (the reopt/calib A/B bins
        // gate their acceptance bars the same way).
        let disabled_cfg = config.clone().with_steal_policy(hetex_common::StealPolicy::Disabled);
        let (sum, cnt) = expected(200_000);
        let mut stealing_times = Vec::new();
        let mut bound_times = Vec::new();
        for _ in 0..3 {
            let graph = compile(&het, &config, &skewed).unwrap();
            let stealing = executor.execute(&graph, &catalog, &config).unwrap();
            let graph = compile(&het, &disabled_cfg, &skewed).unwrap();
            let bound = executor.execute(&graph, &catalog, &disabled_cfg).unwrap();

            assert_eq!(stealing.rows, vec![vec![sum, cnt]]);
            assert_eq!(bound.rows, stealing.rows);
            assert!(bound.blocks_stolen.iter().all(|&s| s == 0), "disabled policy must not steal");
            assert!(
                stealing.blocks_stolen.iter().sum::<u64>() > 0,
                "idle siblings should have stolen from the straggler's backlog"
            );
            stealing_times.push(stealing.sim_time);
            bound_times.push(bound.sim_time);
        }
        stealing_times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        bound_times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(
            stealing_times[1] <= bound_times[1],
            "stealing (median {}) must not lose to binding (median {}) on a skewed topology",
            stealing_times[1],
            bound_times[1]
        );
    }

    #[test]
    fn feedback_routing_diverts_new_blocks_from_a_hidden_straggler() {
        use hetex_common::CalibrationConfig;
        // One GPU is a hidden 8x straggler and stealing is disabled, so the
        // only defence is the calibration loop: the straggler's observed
        // slowdown must grow past the detector threshold, and feedback
        // routing must beat nominal routing end-to-end with identical rows.
        let topology = ServerTopology::paper_server();
        let slow_gpu = topology.gpus()[1];
        let skewed = topology.with_device_slowdown(slow_gpu, 8.0).unwrap();
        let catalog = catalog_with_data(&skewed, 200_000);
        let mut config = EngineConfig::hybrid(8, 2);
        config.scale_weight = 20_000.0;
        config.steal_policy = hetex_common::StealPolicy::Disabled;
        let het = parallelize(&join_sum_plan(), &config).unwrap();
        let executor = Executor::new(Arc::clone(&skewed));

        let graph = compile(&het, &config, &skewed).unwrap();
        let calibrated = executor.execute(&graph, &catalog, &config).unwrap();
        let nominal_cfg = config.clone().with_calibration(CalibrationConfig::disabled());
        let graph = compile(&het, &nominal_cfg, &skewed).unwrap();
        let nominal = executor.execute(&graph, &catalog, &nominal_cfg).unwrap();

        let (sum, cnt) = expected(200_000);
        assert_eq!(calibrated.rows, vec![vec![sum, cnt]]);
        assert_eq!(nominal.rows, calibrated.rows);
        assert!(
            calibrated.sim_time < nominal.sim_time,
            "feedback routing ({}) must beat nominal routing ({}) on a skewed topology",
            calibrated.sim_time,
            nominal.sim_time
        );
        // The straggler's EWMA is observed in both runs (measurement is
        // always on; only the pricing is toggled).
        for result in [&calibrated, &nominal] {
            let observed = result.observed_slowdowns[slow_gpu.index()];
            assert!(observed > 1.5, "straggler EWMA {observed} never rose");
        }
        // Every healthy device reads exactly nominal.
        for (idx, &ewma) in calibrated.observed_slowdowns.iter().enumerate() {
            if DeviceId::new(idx) != slow_gpu {
                assert_eq!(ewma, 1.0, "device {idx} falsely observed as slow");
            }
        }
        // Pipelined runs surface the probe's constants; on the two-socket
        // paper server the measured round trip is non-zero.
        let constants = calibrated.probed_constants.as_ref().expect("probed constants");
        assert!(constants.control_plane_ns > 0);
    }

    #[test]
    fn cost_model_toggles_preserve_rows_and_measure_control_plane_traffic() {
        use hetex_common::CostModelConfig;
        let config = EngineConfig::hybrid(4, 2);
        let all_on = run(&config, 100_000);
        // A hybrid pipelined run pushes blocks across nodes (CPU DRAM to GPU
        // consumers at least), so control-plane traffic must be measured.
        assert!(
            all_on.remote_control_acquisitions > 0,
            "hybrid pipelined run saw no remote queue acquisitions"
        );
        // Rows are invariant under the estimation toggles: the cost model
        // only moves blocks between equivalent consumers.
        let all_off = run(&config.clone().with_cost_model(CostModelConfig::disabled()), 100_000);
        assert_eq!(all_on.rows, all_off.rows);
        // The legacy mode neither measures nor prices control-plane traffic,
        // and carries no calibration observables either.
        let saat = run(&config.with_execution_mode(ExecutionMode::StageAtATime), 100_000);
        assert_eq!(saat.remote_control_acquisitions, 0);
        assert!(saat.observed_slowdowns.is_empty());
        assert!(saat.probed_constants.is_none());
        assert_eq!(saat.rows, all_on.rows);
        // Pipelined runs always surface the per-device EWMAs (healthy here).
        assert!(!all_on.observed_slowdowns.is_empty());
        assert!(all_on.observed_slowdowns.iter().all(|&s| s >= 1.0));
    }

    #[test]
    fn both_modes_produce_identical_rows() {
        let pipelined = run(&EngineConfig::cpu_only(4), 50_000);
        let saat = run(
            &EngineConfig::cpu_only(4).with_execution_mode(ExecutionMode::StageAtATime),
            50_000,
        );
        assert_eq!(pipelined.rows, saat.rows);
    }

    #[test]
    fn pipelined_mode_overlaps_producer_and_consumer_stages() {
        // Stage 1 (hash build) consumes the blocks stage 0 (dimension scan +
        // pack) produces. In pipelined mode the build processes its first
        // block while the scan stage is still running (observed on the wall
        // clock, so the check retries a few times — the overlap is a
        // capability, not a guarantee of any single thread interleaving); in
        // stage-at-a-time mode it can never happen.
        let topology = ServerTopology::paper_server();
        let fact_rows = 200_000usize;
        let dim_rows = 400_000usize;
        let catalog = {
            let catalog = Catalog::new();
            let nodes = topology.cpu_memory_nodes();
            let fact = TableBuilder::new("fact")
                .column(
                    "key",
                    DataType::Int32,
                    ColumnData::Int32((0..fact_rows as i32).map(|i| i % dim_rows as i32).collect()),
                )
                .column(
                    "value",
                    DataType::Int64,
                    ColumnData::Int64((0..fact_rows as i64).collect()),
                )
                .build(&nodes, 256)
                .unwrap();
            let dim = TableBuilder::new("dim")
                .column("k", DataType::Int32, ColumnData::Int32((0..dim_rows as i32).collect()))
                .column(
                    "attr",
                    DataType::Int32,
                    ColumnData::Int32((0..dim_rows as i32).map(|i| i % 7).collect()),
                )
                .build(&nodes, 256)
                .unwrap();
            catalog.register(fact);
            catalog.register(dim);
            catalog
        };
        let mut config = EngineConfig::cpu_only(4);
        config.block_capacity = 256;
        let het = parallelize(&join_sum_plan(), &config).unwrap();
        let graph = compile(&het, &config, &topology).unwrap();
        let executor = Executor::new(Arc::clone(&topology));

        let mut pipelined = executor.execute(&graph, &catalog, &config).unwrap();
        let mut overlapped = false;
        for _ in 0..5 {
            let build_first = pipelined.stage_timeline[1]
                .first_block_wall_ns
                .expect("build stage processed blocks");
            let scan_finished = pipelined.stage_timeline[0].finished_wall_ns;
            if build_first < scan_finished {
                overlapped = true;
                break;
            }
            pipelined = executor.execute(&graph, &catalog, &config).unwrap();
        }
        assert!(
            overlapped,
            "pipelined: the build stage never processed a block before the scan stage finished"
        );

        let saat_config = config.clone().with_execution_mode(ExecutionMode::StageAtATime);
        let graph = compile(&het, &saat_config, &topology).unwrap();
        let saat = executor.execute(&graph, &catalog, &saat_config).unwrap();
        let build_first =
            saat.stage_timeline[1].first_block_wall_ns.expect("build stage processed blocks");
        let scan_finished = saat.stage_timeline[0].finished_wall_ns;
        assert!(
            build_first >= scan_finished,
            "stage-at-a-time: build must start only after the scan finished"
        );
        assert_eq!(pipelined.rows, saat.rows);
    }

    /// `SELECT SUM(value), COUNT(*) FROM fact` — one anonymous routed stage,
    /// so every consumer is interchangeable and a quarantined worker's
    /// backlog can always be drained on a sibling.
    fn scan_sum_plan() -> RelNode {
        RelNode::scan("fact", &["key", "value"])
            .reduce(vec![AggSpec::sum(Expr::col(1)), AggSpec::count()], &["sum_v", "cnt"])
    }

    fn run_faulted(
        topology: &Arc<ServerTopology>,
        plan: &FaultPlan,
        config: &EngineConfig,
        rel: &RelNode,
        rows: usize,
    ) -> Result<ExecutionResult> {
        let faulted = topology.with_fault_plan(plan.clone()).unwrap();
        let catalog = catalog_with_data(&faulted, rows);
        let het = parallelize(rel, config).unwrap();
        let graph = compile(&het, config, &faulted).unwrap();
        Executor::new(faulted).execute(&graph, &catalog, config)
    }

    #[test]
    fn an_aborted_worker_is_quarantined_and_its_backlog_drained_on_a_sibling() {
        let topology = ServerTopology::paper_server();
        let dead = topology.gpus()[1];
        // Abort after the first block: the worker's clock crosses 1ns as soon
        // as it has processed anything, leaving the rest of its queue to be
        // re-executed on the surviving GPU. Stealing is disabled so the
        // takeover drain is the only rescue path.
        let plan = FaultPlan::new().abort_device(dead, SimTime::from_nanos(1));
        let config =
            EngineConfig::gpu_only(2).with_steal_policy(hetex_common::StealPolicy::Disabled);
        let faulted = run_faulted(&topology, &plan, &config, &scan_sum_plan(), 50_000).unwrap();
        let healthy =
            run_faulted(&topology, &FaultPlan::new(), &config, &scan_sum_plan(), 50_000).unwrap();
        let sum: i64 = (0..50_000i64).sum();
        assert_eq!(faulted.rows, vec![vec![sum, 50_000]]);
        assert_eq!(faulted.rows, healthy.rows, "recovery must be byte-identical");
        assert!(
            faulted.recovered_blocks > 0,
            "the dead core's backlog should have been re-executed on the survivor"
        );
        assert_eq!(faulted.staging_leaked_bytes, 0, "recovery must not leak leases");
        assert_eq!(healthy.recovered_blocks, 0);
        assert_eq!(healthy.transient_retries, 0);
    }

    #[test]
    fn transient_kernel_failures_retry_in_place_and_preserve_rows() {
        let topology = ServerTopology::paper_server();
        let flaky = topology.cpu_cores()[0];
        // Every kernel invocation on the flaky core fails with p=0.5 for the
        // whole run; the retry budget absorbs almost all of them, and the
        // rare streak that exhausts it escalates to quarantine + drain — rows
        // are exact either way.
        let plan = FaultPlan::new().transient_window(
            flaky,
            SimTime::ZERO,
            SimTime::from_millis(60_000),
            0.5,
            42,
        );
        let config = EngineConfig::cpu_only(2);
        let faulted = run_faulted(&topology, &plan, &config, &scan_sum_plan(), 200_000).unwrap();
        let sum: i64 = (0..200_000i64).sum();
        assert_eq!(faulted.rows, vec![vec![sum, 200_000]]);
        assert!(faulted.transient_retries > 0, "p=0.5 over ~50 blocks must hit at least once");
        assert_eq!(faulted.staging_leaked_bytes, 0);

        // With in-place retry switched off, the first transient failure
        // escalates straight to quarantine; the drain still saves the rows.
        let no_retry_cfg = config
            .clone()
            .with_fault(hetex_common::FaultConfig::default().with_transient_retry(false));
        let escalated =
            run_faulted(&topology, &plan, &no_retry_cfg, &scan_sum_plan(), 200_000).unwrap();
        assert_eq!(escalated.rows, faulted.rows);
        assert_eq!(escalated.transient_retries, 0);
    }

    #[test]
    fn a_wedged_worker_is_detected_by_the_watchdog_and_drained() {
        let topology = ServerTopology::paper_server();
        let stuck = topology.gpus()[1];
        let plan = FaultPlan::new().wedge_worker(stuck, SimTime::from_nanos(1));
        let config =
            EngineConfig::gpu_only(2).with_steal_policy(hetex_common::StealPolicy::Disabled);
        let recovered = run_faulted(&topology, &plan, &config, &scan_sum_plan(), 50_000).unwrap();
        let sum: i64 = (0..50_000i64).sum();
        assert_eq!(recovered.rows, vec![vec![sum, 50_000]]);
        assert_eq!(recovered.staging_leaked_bytes, 0);

        // Same wedge with quarantine off: the watchdog can only convert the
        // hang into a structured `Wedged` failure.
        let no_quarantine = config.clone().with_fault(
            hetex_common::FaultConfig::default()
                .with_quarantine(false)
                .with_degraded_restart(false),
        );
        let err =
            run_faulted(&topology, &plan, &no_quarantine, &scan_sum_plan(), 50_000).unwrap_err();
        assert_eq!(err.category(), "wedged", "got: {err}");

        // With the watchdog disabled the wedge is never injected at all: no
        // configuration of the fault ladder may turn into an untestable hang.
        let no_watchdog =
            config.clone().with_fault(hetex_common::FaultConfig::default().with_watchdog(false));
        let untouched =
            run_faulted(&topology, &plan, &no_watchdog, &scan_sum_plan(), 50_000).unwrap();
        assert_eq!(untouched.rows, recovered.rows);
    }

    #[test]
    fn device_loss_without_quarantine_is_a_structured_error() {
        let topology = ServerTopology::paper_server();
        let dead = topology.gpus()[1];
        let plan = FaultPlan::new().abort_device(dead, SimTime::ZERO);
        let config = EngineConfig::gpu_only(2).with_fault(hetex_common::FaultConfig::disabled());
        let err = run_faulted(&topology, &plan, &config, &scan_sum_plan(), 50_000).unwrap_err();
        match err {
            HetError::DeviceLost { device, .. } => assert_eq!(device, dead.index()),
            other => panic!("expected DeviceLost, got: {other}"),
        }
    }

    #[test]
    fn gpu_loss_mid_join_recovers_on_the_surviving_devices() {
        let topology = ServerTopology::paper_server();
        let dead = topology.gpus()[1];
        let plan = FaultPlan::new().abort_device(dead, SimTime::from_nanos(1));
        let mut config = EngineConfig::hybrid(8, 2);
        config.scale_weight = 20_000.0;
        let faulted = run_faulted(&topology, &plan, &config, &join_sum_plan(), 200_000).unwrap();
        let (sum, cnt) = expected(200_000);
        assert_eq!(faulted.rows, vec![vec![sum, cnt]]);
        assert_eq!(faulted.staging_leaked_bytes, 0);
    }

    #[test]
    fn an_arena_burst_squeezes_staging_without_corrupting_rows() {
        let topology = ServerTopology::paper_server();
        let node = topology.cpu_memory_nodes()[0];
        let mut config = EngineConfig::hybrid(4, 2);
        config.block_capacity = 1024;
        let budget = config.min_staging_bytes() * 4;
        config.staging_bytes = Some(budget);
        // The burst grabs up to half the arena for the first simulated 50ms;
        // producers park, the clocks advance past the window, the watchdog
        // releases the hostage lease and the pipeline drains normally.
        let plan =
            FaultPlan::new().arena_burst(node, budget / 2, SimTime::ZERO, SimTime::from_millis(50));
        let squeezed = run_faulted(&topology, &plan, &config, &join_sum_plan(), 100_000).unwrap();
        let (sum, cnt) = expected(100_000);
        assert_eq!(squeezed.rows, vec![vec![sum, cnt]]);
        assert_eq!(squeezed.staging_leaked_bytes, 0, "the burst lease must be released");
        for (n, peak) in &squeezed.staging_peaks {
            assert!(peak <= &budget, "node {n} peaked at {peak} > budget {budget}");
        }
    }
}
