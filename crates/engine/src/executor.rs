//! The stage executor.
//!
//! Executes a [`StageGraph`] on the (simulated) server. Functional execution
//! is real — every pipeline instance is a host thread processing real blocks,
//! so results are exact and device-shared state is genuinely updated
//! concurrently — while *performance* is accounted on the simulated resource
//! clocks: each device (CPU core or GPU) owns a clock, each DRAM node and each
//! PCIe link owns a clock, and the reported query time is the largest
//! completion timestamp observed. Pipelining, transfer/compute overlap, PCIe
//! saturation and DRAM saturation all emerge from those clocks (see
//! `DESIGN.md` §4).

use crate::codegen::{MemMoveMode, Stage, StageGraph, StageSource};
use hetex_common::{BlockHandle, EngineConfig, HetError, Result};
use hetex_core::mem_move::MemMove;
use hetex_core::router::Router;
use hetex_gpu_sim::GpuDevice;
use hetex_jit::{ExecCtx, SharedState, TerminalStep};
use hetex_storage::{Catalog, Segmenter};
use hetex_topology::{
    CostModel, DeviceId, DeviceKind, DmaEngine, ResourceClock, ServerTopology, SimTime,
    WorkProfile,
};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Router initialization and thread pinning overhead (§6.4: ~10 ms, visible
/// only for very small inputs).
pub const ROUTER_INIT_OVERHEAD: SimTime = SimTime::from_millis(10);

/// Per-device-kind execution statistics of one query.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeviceKindStats {
    /// Blocks processed by instances of this device kind.
    pub blocks: u64,
    /// Simulated busy nanoseconds accumulated by this device kind.
    pub busy_ns: u64,
    /// Modeled bytes scanned by this device kind.
    pub bytes_scanned: f64,
}

/// The raw outcome of running a stage graph.
#[derive(Debug)]
pub struct ExecutionResult {
    /// Result rows (keys then aggregates, sorted by key for group-bys).
    pub rows: Vec<Vec<i64>>,
    /// Simulated end-to-end execution time.
    pub sim_time: SimTime,
    /// Wall-clock time of the functional execution (not the reported metric).
    pub wall_time: std::time::Duration,
    /// Per device kind statistics.
    pub per_kind: HashMap<DeviceKind, DeviceKindStats>,
    /// Bytes moved over interconnects (weighted).
    pub bytes_transferred: f64,
}

/// Executes stage graphs on a topology.
pub struct Executor {
    topology: Arc<ServerTopology>,
    gpus: HashMap<DeviceId, Arc<GpuDevice>>,
    cost: CostModel,
}

impl Executor {
    /// An executor for the given topology, creating one simulated GPU per GPU
    /// device in the topology.
    pub fn new(topology: Arc<ServerTopology>) -> Self {
        let gpus = topology
            .gpus()
            .into_iter()
            .map(|id| {
                let profile = topology.device(id).expect("gpu device exists").clone();
                (id, Arc::new(GpuDevice::new(id, profile)))
            })
            .collect();
        Self { topology, gpus, cost: CostModel::new() }
    }

    /// The simulated GPUs, keyed by device id.
    pub fn gpus(&self) -> &HashMap<DeviceId, Arc<GpuDevice>> {
        &self.gpus
    }

    /// Execute a stage graph.
    pub fn execute(
        &self,
        graph: &StageGraph,
        catalog: &Catalog,
        config: &EngineConfig,
    ) -> Result<ExecutionResult> {
        let wall_start = std::time::Instant::now();
        self.topology.reset_clocks();
        let dma = DmaEngine::new(Arc::clone(&self.topology));
        let mem_move = MemMove::new(dma);

        // One persistent clock per device: a core used by several stages
        // cannot do their work at the same simulated time.
        let mut device_clocks: HashMap<DeviceId, ResourceClock> = HashMap::new();
        for (idx, _) in self.topology.devices().iter().enumerate() {
            device_clocks.insert(DeviceId::new(idx), ResourceClock::new(format!("dev{idx}")));
        }

        let any_router = graph.stages.iter().any(|s| s.has_router);
        let mut stage_outputs: Vec<Vec<BlockHandle>> = Vec::with_capacity(graph.stages.len());
        let mut stage_completion: Vec<SimTime> = Vec::with_capacity(graph.stages.len());
        let mut per_kind: HashMap<DeviceKind, DeviceKindStats> = HashMap::new();
        let mut result_rows: Vec<Vec<i64>> = Vec::new();

        for (stage_idx, stage) in graph.stages.iter().enumerate() {
            // Gather the stage's input blocks.
            let inputs: Vec<BlockHandle> = match &stage.source {
                StageSource::Table { table, projection } => {
                    let weight = config.weight_for(table);
                    let table = catalog.get(table)?;
                    let projection: Vec<&str> = projection.iter().map(String::as_str).collect();
                    Segmenter::new(table, &projection, config.block_capacity)
                        .with_weight(weight)
                        .segments()?
                }
                StageSource::Stage(idx) => stage_outputs
                    .get(*idx)
                    .cloned()
                    .ok_or_else(|| HetError::Execution(format!("stage {idx} has no outputs yet")))?,
            };

            // A probe stage cannot start before the hash tables it reads are
            // fully built.
            let floor = stage
                .depends_on
                .iter()
                .map(|&d| stage_completion.get(d).copied().unwrap_or(SimTime::ZERO))
                .fold(SimTime::ZERO, SimTime::max);

            let outcome = self.run_stage(
                stage,
                stage_idx,
                inputs,
                floor,
                &graph.state,
                &mem_move,
                &device_clocks,
                config,
            )?;

            for (kind, s) in outcome.per_kind {
                let entry = per_kind.entry(kind).or_default();
                entry.blocks += s.blocks;
                entry.busy_ns += s.busy_ns;
                entry.bytes_scanned += s.bytes_scanned;
            }
            if stage.is_result {
                result_rows = outcome.result_rows;
            }
            stage_completion.push(outcome.completion);
            stage_outputs.push(outcome.outputs);
        }

        let mut sim_time = stage_completion
            .iter()
            .copied()
            .fold(SimTime::ZERO, SimTime::max);
        if any_router {
            sim_time = sim_time.add_nanos(ROUTER_INIT_OVERHEAD.as_nanos());
        }

        Ok(ExecutionResult {
            rows: result_rows,
            sim_time,
            wall_time: wall_start.elapsed(),
            per_kind,
            bytes_transferred: mem_move.dma().stats().bytes_moved,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn run_stage(
        &self,
        stage: &Stage,
        stage_idx: usize,
        inputs: Vec<BlockHandle>,
        floor: SimTime,
        state: &SharedState,
        mem_move: &MemMove,
        device_clocks: &HashMap<DeviceId, ResourceClock>,
        config: &EngineConfig,
    ) -> Result<StageOutcome> {
        let router = Router::new(stage.policy, stage.consumers.clone())?;
        let gpu_nodes = self.topology.gpu_memory_nodes();

        // Per-instance routing state: the memory node outputs/relocations
        // target, and an estimated load used by the least-loaded policy.
        let mut instance_inputs: Vec<Vec<BlockHandle>> = vec![Vec::new(); stage.consumers.len()];
        let mut est_load_ns: Vec<u64> = vec![0; stage.consumers.len()];
        let instance_devices: Vec<DeviceId> = stage
            .consumers
            .iter()
            .map(|slot| {
                slot.affinity.for_kind(slot.kind).ok_or_else(|| {
                    HetError::Execution("consumer slot without a device affinity".into())
                })
            })
            .collect::<Result<Vec<_>>>()?;
        let instance_nodes: Vec<_> = instance_devices
            .iter()
            .map(|&d| self.topology.local_memory_of(d))
            .collect::<Result<Vec<_>>>()?;

        // Routing pass: distribute block handles (control plane only), then
        // let mem-move localize the data for the chosen instance.
        //
        // The least-loaded policy is given, for each consumer, the projected
        // completion time *if this block were assigned to it*: its accumulated
        // load plus the block's estimated cost on that consumer (throttled to
        // PCIe speed when the data would have to move, and accounting for the
        // random accesses of the pipeline's hash probes). This is the greedy
        // feedback-driven balancing the paper's router performs, and it also
        // makes routing locality-aware for GPU-resident data.
        // Per-block cost estimate used for balancing: the same work/cost model
        // the executor charges, evaluated with an assumed filter selectivity
        // (the router cannot know real selectivities up front).
        const ASSUMED_SELECTIVITY: f64 = 0.3;
        let estimate_template = stage.template(DeviceKind::CpuCore);
        let estimate_counters = |rows: u64, bytes: u64| hetex_jit::BlockCounters {
            rows_in: rows,
            rows_terminal: (rows as f64 * ASSUMED_SELECTIVITY) as u64,
            probes: (rows as f64 * ASSUMED_SELECTIVITY) as u64,
            probe_matches: (rows as f64 * ASSUMED_SELECTIVITY) as u64,
            bytes_in: bytes,
            ..Default::default()
        };
        // A DMA copy is only required when the consumer cannot address the
        // block directly: GPU consumers need device-resident data, and no CPU
        // core can address GPU device memory. CPU consumers read remote NUMA
        // DRAM directly (at a penalty already captured by the socket DRAM
        // clocks), so no transfer is scheduled for them.
        let requires_dma = |instance: usize, location: hetex_common::MemoryNodeId| -> bool {
            if location == instance_nodes[instance] {
                return false;
            }
            let consumer_is_gpu = stage.consumers[instance].kind == DeviceKind::Gpu;
            let block_on_gpu = self
                .topology
                .memory_node(location)
                .map(|m| m.is_gpu_memory())
                .unwrap_or(false);
            consumer_is_gpu || block_on_gpu
        };

        for handle in inputs {
            let counters = estimate_counters(handle.rows() as u64, handle.byte_size() as u64);
            let est_work = estimate_template.work_profile(&counters, handle.meta().weight);
            let projected: Vec<u64> = (0..stage.consumers.len())
                .map(|i| {
                    let device = match self.topology.device(instance_devices[i]) {
                        Ok(d) => d,
                        Err(_) => return u64::MAX,
                    };
                    let mut block_ns = self.cost.time_ns(&est_work, device) as f64;
                    if requires_dma(i, handle.meta().location) && stage.mem_move != MemMoveMode::None
                    {
                        let transfer_ns = handle.weighted_bytes() / 12.0;
                        block_ns = block_ns.max(transfer_ns);
                    }
                    est_load_ns[i].saturating_add(block_ns as u64)
                })
                .collect();
            let pick = router.route(handle.meta(), &projected)?;
            est_load_ns[pick] = projected[pick];

            let localized = match stage.mem_move {
                MemMoveMode::None => handle,
                MemMoveMode::ToInstance => {
                    if requires_dma(pick, handle.meta().location) {
                        mem_move.relocate(&handle, instance_nodes[pick])?
                    } else {
                        handle
                    }
                }
                MemMoveMode::Broadcast => {
                    // Broadcast the dimension data to every GPU memory node
                    // (so probes on GPUs read local data), and hand the local
                    // copy to the building instance.
                    if !gpu_nodes.is_empty() {
                        mem_move.broadcast(&handle, &gpu_nodes)?;
                    }
                    if requires_dma(pick, handle.meta().location) {
                        mem_move.relocate(&handle, instance_nodes[pick])?
                    } else {
                        handle
                    }
                }
            };
            instance_inputs[pick].push(localized);
        }

        // Processing pass: one host thread per instance.
        let outputs: Mutex<Vec<BlockHandle>> = Mutex::new(Vec::new());
        let per_kind: Mutex<HashMap<DeviceKind, DeviceKindStats>> = Mutex::new(HashMap::new());
        let completion: Mutex<SimTime> = Mutex::new(floor);
        let first_error: Mutex<Option<HetError>> = Mutex::new(None);

        std::thread::scope(|scope| {
            for (slot_idx, slot) in stage.consumers.iter().enumerate() {
                let my_blocks = std::mem::take(&mut instance_inputs[slot_idx]);
                if my_blocks.is_empty() {
                    continue;
                }
                let device_id = instance_devices[slot_idx];
                let device_profile = match self.topology.device(device_id) {
                    Ok(p) => p.clone(),
                    Err(e) => {
                        *first_error.lock() = Some(e);
                        continue;
                    }
                };
                let clock = device_clocks
                    .get(&device_id)
                    .expect("device clock exists")
                    .clone();
                let pipeline = stage.template(slot.kind).clone();
                let gpu = self.gpus.get(&device_id).cloned();
                let outputs = &outputs;
                let per_kind = &per_kind;
                let completion = &completion;
                let first_error = &first_error;
                let topology = Arc::clone(&self.topology);
                let cost = self.cost;
                let kind = slot.kind;
                let out_node = instance_nodes[slot_idx];
                let block_capacity = config.block_capacity;

                scope.spawn(move || {
                    let mut ctx = match kind {
                        DeviceKind::Gpu => match gpu {
                            Some(gpu) => ExecCtx::gpu(gpu, block_capacity),
                            None => {
                                *first_error.lock() = Some(HetError::Execution(format!(
                                    "stage {stage_idx}: GPU instance without a device"
                                )));
                                return;
                            }
                        },
                        DeviceKind::CpuCore => ExecCtx::cpu(out_node, block_capacity),
                    };

                    let mut local_stats = DeviceKindStats::default();
                    let mut local_outputs: Vec<BlockHandle> = Vec::new();
                    let mut last_end = floor;

                    // Charge the modeled work to the instance's device clock
                    // and to the shared bandwidth of its local memory node.
                    // The memory-node clock is a *utilization accumulator*:
                    // every block advances it by bytes / node_bandwidth, and a
                    // block cannot complete before the node has had enough
                    // cumulative capacity to serve it. This is what makes a
                    // socket's cores stop scaling once they saturate its DRAM
                    // (§6.4: the sum query plateaus at ~16 cores / 89.7 GB/s).
                    let charge = |work: &WorkProfile, not_before: SimTime| -> (SimTime, u64) {
                        let busy = cost.time_ns(work, &device_profile);
                        let (_, end) = clock.reserve(not_before, busy);
                        let mut final_end = end;
                        if work.memory_node_bytes() > 0.0 {
                            if let (Ok(node), Ok(mem_clock)) = (
                                topology.memory_node(device_profile.local_memory),
                                topology.memory_clock(device_profile.local_memory),
                            ) {
                                let mem_ns = (work.memory_node_bytes()
                                    / (node.bandwidth_gbps * 1e9)
                                    * 1e9) as u64;
                                let (_, mem_end) = mem_clock.reserve(SimTime::ZERO, mem_ns);
                                final_end = end.max(mem_end);
                                clock.advance_to(final_end);
                            }
                        }
                        (final_end, busy)
                    };

                    for block in my_blocks {
                        let ready = SimTime::from_nanos(block.meta().ready_at_ns).max(floor);
                        match pipeline.process_block(&block, state, &mut ctx) {
                            Ok(out) => {
                                let (end, busy) = charge(&out.work, ready);
                                last_end = last_end.max(end);
                                local_stats.busy_ns += busy;
                                local_stats.blocks += 1;
                                local_stats.bytes_scanned += out.work.bytes_scanned;
                                for mut produced in out.blocks {
                                    produced.meta_mut().ready_at_ns = end.as_nanos();
                                    local_outputs.push(produced);
                                }
                            }
                            Err(e) => {
                                let mut slot = first_error.lock();
                                if slot.is_none() {
                                    *slot = Some(e);
                                }
                                return;
                            }
                        }
                    }

                    // Flush partially filled packed outputs.
                    match pipeline.finalize_instance(&mut ctx) {
                        Ok(out) => {
                            if !out.work.is_empty() {
                                let (end, busy) = charge(&out.work, last_end);
                                last_end = last_end.max(end);
                                local_stats.busy_ns += busy;
                            }
                            for mut produced in out.blocks {
                                produced.meta_mut().ready_at_ns = last_end.as_nanos();
                                local_outputs.push(produced);
                            }
                        }
                        Err(e) => {
                            let mut slot = first_error.lock();
                            if slot.is_none() {
                                *slot = Some(e);
                            }
                            return;
                        }
                    }

                    if std::env::var("HETEX_TRACE_EXEC").is_ok() {
                        eprintln!(
                            "[trace] stage {stage_idx} dev {device_id:?} blocks {} busy {:.1}ms last_end {} clock {}",
                            local_stats.blocks,
                            local_stats.busy_ns as f64 / 1e6,
                            last_end,
                            clock.now()
                        );
                    }
                    outputs.lock().extend(local_outputs);
                    {
                        let mut kinds = per_kind.lock();
                        let entry = kinds.entry(kind).or_default();
                        entry.blocks += local_stats.blocks;
                        entry.busy_ns += local_stats.busy_ns;
                        entry.bytes_scanned += local_stats.bytes_scanned;
                    }
                    let mut done = completion.lock();
                    *done = done.max(last_end).max(clock.now());
                });
            }
        });

        if let Some(err) = first_error.lock().take() {
            return Err(err);
        }

        let completion = *completion.lock();
        let mut outputs = outputs.into_inner();
        let mut result_rows = Vec::new();

        // Emit reduce / group-by results exactly once per stage, on a CPU
        // context (the paper's final single-instance gather pipeline).
        if matches!(
            stage.template(DeviceKind::CpuCore).terminal(),
            TerminalStep::Reduce { .. } | TerminalStep::GroupBy { .. }
        ) {
            let node = self.topology.cpu_memory_nodes()[0];
            let mut ctx = ExecCtx::cpu(node, config.block_capacity);
            let emitted = stage
                .template(DeviceKind::CpuCore)
                .emit_state_results(state, &mut ctx)?;
            for handle in &emitted.blocks {
                let block = handle.block();
                for row in 0..block.rows() {
                    result_rows.push(
                        block
                            .columns()
                            .iter()
                            .map(|c| c.get_i64(row).unwrap_or(0))
                            .collect(),
                    );
                }
            }
            let mut emitted_blocks = emitted.blocks;
            for b in &mut emitted_blocks {
                b.meta_mut().ready_at_ns = completion.as_nanos();
            }
            outputs.extend(emitted_blocks);
        }

        Ok(StageOutcome {
            outputs,
            completion,
            per_kind: per_kind.into_inner(),
            result_rows,
        })
    }
}

struct StageOutcome {
    outputs: Vec<BlockHandle>,
    completion: SimTime,
    per_kind: HashMap<DeviceKind, DeviceKindStats>,
    result_rows: Vec<Vec<i64>>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::compile;
    use hetex_common::{ColumnData, DataType};
    use hetex_core::{parallelize, RelNode};
    use hetex_jit::{AggSpec, Expr};
    use hetex_storage::TableBuilder;

    fn catalog_with_data(topology: &ServerTopology, rows: usize) -> Catalog {
        let catalog = Catalog::new();
        let nodes = topology.cpu_memory_nodes();
        let fact = TableBuilder::new("fact")
            .column(
                "key",
                DataType::Int32,
                ColumnData::Int32((0..rows as i32).map(|i| i % 100).collect()),
            )
            .column(
                "value",
                DataType::Int64,
                ColumnData::Int64((0..rows as i64).collect()),
            )
            .build(&nodes, 4096)
            .unwrap();
        let dim = TableBuilder::new("dim")
            .column("k", DataType::Int32, ColumnData::Int32((0..100).collect()))
            .column(
                "attr",
                DataType::Int32,
                ColumnData::Int32((0..100).map(|i| i % 7).collect()),
            )
            .build(&nodes, 4096)
            .unwrap();
        catalog.register(fact);
        catalog.register(dim);
        catalog
    }

    fn join_sum_plan() -> RelNode {
        // SELECT SUM(value) FROM fact JOIN dim ON key = k WHERE attr < 3
        let dim = RelNode::scan("dim", &["k", "attr"]).filter(Expr::col(1).lt_lit(3));
        RelNode::scan("fact", &["key", "value"])
            .hash_join(dim, 0, 0, &[1])
            .reduce(vec![AggSpec::sum(Expr::col(1)), AggSpec::count()], &["sum_v", "cnt"])
    }

    fn expected(rows: usize) -> (i64, i64) {
        let mut sum = 0i64;
        let mut cnt = 0i64;
        for i in 0..rows as i64 {
            let key = i % 100;
            if key % 7 < 3 {
                sum += i;
                cnt += 1;
            }
        }
        (sum, cnt)
    }

    fn run(config: &EngineConfig, rows: usize) -> ExecutionResult {
        let topology = ServerTopology::paper_server();
        let catalog = catalog_with_data(&topology, rows);
        let het = parallelize(&join_sum_plan(), config).unwrap();
        let graph = compile(&het, config, &topology).unwrap();
        let executor = Executor::new(topology);
        executor.execute(&graph, &catalog, config).unwrap()
    }

    #[test]
    fn cpu_only_execution_is_correct() {
        let result = run(&EngineConfig::cpu_only(4), 50_000);
        let (sum, cnt) = expected(50_000);
        assert_eq!(result.rows, vec![vec![sum, cnt]]);
        assert!(result.sim_time > SimTime::ZERO);
        assert!(result.per_kind.contains_key(&DeviceKind::CpuCore));
        assert!(!result.per_kind.contains_key(&DeviceKind::Gpu));
    }

    #[test]
    fn gpu_only_execution_matches_cpu_results() {
        let gpu = run(&EngineConfig::gpu_only(2), 50_000);
        let cpu = run(&EngineConfig::cpu_only(4), 50_000);
        assert_eq!(gpu.rows, cpu.rows);
        assert!(gpu.per_kind.contains_key(&DeviceKind::Gpu));
        // Data started CPU-resident, so bytes had to cross PCIe.
        assert!(gpu.bytes_transferred > 0.0);
    }

    #[test]
    fn hybrid_execution_uses_both_device_kinds() {
        let result = run(&EngineConfig::hybrid(8, 2), 200_000);
        let (sum, cnt) = expected(200_000);
        assert_eq!(result.rows, vec![vec![sum, cnt]]);
        let cpu_blocks = result.per_kind.get(&DeviceKind::CpuCore).map_or(0, |s| s.blocks);
        let gpu_blocks = result.per_kind.get(&DeviceKind::Gpu).map_or(0, |s| s.blocks);
        assert!(cpu_blocks > 0, "CPU should receive some blocks");
        assert!(gpu_blocks > 0, "GPUs should receive some blocks");
    }

    #[test]
    fn more_cpu_cores_reduce_simulated_time() {
        let one = run(&EngineConfig::cpu_only(1), 200_000);
        let eight = run(&EngineConfig::cpu_only(8), 200_000);
        assert!(
            eight.sim_time < one.sim_time,
            "8 cores ({}) should beat 1 core ({})",
            eight.sim_time,
            one.sim_time
        );
    }

    #[test]
    fn router_overhead_is_charged_once() {
        let mut without = EngineConfig::cpu_only(1);
        without.hetexchange_enabled = false;
        let seq = run(&without, 20_000);
        let with = run(&EngineConfig::cpu_only(1), 20_000);
        let diff = with.sim_time.as_nanos() as i64 - seq.sim_time.as_nanos() as i64;
        assert!(
            diff >= ROUTER_INIT_OVERHEAD.as_nanos() as i64 / 2,
            "router overhead missing: {diff}"
        );
        assert_eq!(seq.rows, with.rows);
    }
}
