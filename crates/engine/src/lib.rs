//! # hetex-engine
//!
//! A Proteus-like analytical engine augmented with HetExchange.
//!
//! The engine mirrors the lifetime of a query in Figure 2:
//!
//! 1. the caller hands in a sequential, device-agnostic physical plan
//!    ([`hetex_core::RelNode`]);
//! 2. the HetExchange parallelizer rewrites it into a heterogeneity-aware plan
//!    ([`hetex_core::HetNode`]) according to the [`EngineConfig`]
//!    (CPU-only / GPU-only / hybrid, degrees of parallelism);
//! 3. [`codegen`] performs the produce()/consume() traversal, splitting the
//!    plan at pipeline breakers into device-specialized
//!    [`hetex_jit::CompiledPipeline`]s organized as a [`codegen::StageGraph`];
//! 4. [`executor`] runs the stages: every pipeline instance is a host thread
//!    pinned (logically) to a CPU core or a simulated GPU; blocks really flow
//!    and results are exact, while execution *time* is accounted on the
//!    simulated resource clocks of `hetex-topology`;
//! 5. [`engine::Proteus`] packages the above behind a session API,
//!    [`server::QueryServer`] serves many queries concurrently over one
//!    engine (priority admission against shared staging arenas, weighted-fair
//!    virtual timeline, shared calibration), and [`reference`] provides a
//!    naive single-threaded executor used to validate every result in tests.
//!
//! [`EngineConfig`]: hetex_common::EngineConfig

pub use hetex_core::codegen;

pub mod engine;
pub mod executor;
pub mod reference;
pub mod server;
pub mod session;

pub use engine::{Proteus, QueryOutcome, QueryStats};
pub use executor::Executor;
pub use hetex_core::codegen::{compile, MemMoveMode, Stage, StageGraph, StageSource};
pub use reference::reference_execute;
pub use server::{QueryServer, QueryTicket, ServeReport, ServedQuery};
pub use session::QuerySession;
