//! The Proteus-like engine session.
//!
//! [`Proteus`] owns the server topology, the catalog of loaded tables, the
//! memory subsystems (block managers and memory managers of §4.3) and an
//! executor. Submitting a query follows the lifetime of Figure 2: a
//! sequential physical plan is parallelized by HetExchange, compiled into
//! pipelines, and executed; the caller gets back the result rows, the
//! simulated execution time, and execution statistics.

use crate::codegen::compile;
use crate::executor::{DeviceKindStats, Executor};
use hetex_common::config::DEFAULT_STAGING_BYTES;
use hetex_common::{AnalysisMode, EngineConfig, HetError, MemoryNodeId, Result};
use hetex_core::reopt::reoptimize;
use hetex_core::{
    parallelize, plan_fingerprint, CostModel, FeedbackCache, HetNode, PlanFeedback, RelNode,
    SlowdownObserver, StageObservation,
};
use hetex_storage::{BlockManagerSet, Catalog, MemoryManagerSet, StoredTable};
use hetex_topology::{CalibratedConstants, DeviceId, DeviceKind, ServerTopology, SimTime};
use std::collections::HashMap;
use std::sync::Arc;

/// Execution statistics of one query.
#[derive(Debug, Clone, Default)]
pub struct QueryStats {
    /// Blocks processed and busy time per device kind.
    pub per_kind: HashMap<DeviceKind, DeviceKindStats>,
    /// Bytes moved over interconnects (weighted by scale extrapolation).
    pub bytes_transferred: f64,
    /// Number of pipeline stages executed.
    pub stages: usize,
    /// Simulated completion time of each stage.
    pub stage_completion: Vec<SimTime>,
    /// Wall-clock time of the functional execution.
    pub wall_time: std::time::Duration,
    /// Peak leased staging bytes per memory node (governed pipelined mode
    /// only; empty otherwise).
    pub staging_peaks: Vec<(MemoryNodeId, u64)>,
    /// Blocks adaptively re-routed (work-stealing) per stage; all zeros when
    /// `EngineConfig::steal_policy` is disabled or in stage-at-a-time mode.
    pub blocks_stolen: Vec<u64>,
    /// Cross-node control-plane traffic: pushes that acquired a queue mutex
    /// on a memory node other than the block's (pipelined mode only). The
    /// cost model's control-plane term prices exactly these acquisitions.
    pub remote_control_acquisitions: u64,
    /// Observed-slowdown EWMA per device slot (charged vs nominal busy
    /// time, 1.0 = healthy), indexed like the topology's device list.
    /// Measured in every pipelined run; priced into routing only when
    /// `CalibrationConfig::slowdown_feedback` is on. Empty in
    /// stage-at-a-time mode.
    pub observed_slowdowns: Vec<f64>,
    /// Constants the topology micro-probe measured at engine construction
    /// (control-plane round trip ns, per-link effective GB/s). `None` in
    /// stage-at-a-time mode.
    pub probed_constants: Option<Arc<CalibratedConstants>>,
    /// Transient kernel failures absorbed by bounded in-place retry (zero
    /// without an injected fault plan).
    pub transient_retries: u64,
    /// Blocks re-executed on a surviving sibling after a device quarantine
    /// (zero without an injected fault plan).
    pub recovered_blocks: u64,
    /// Staging bytes still leased when execution finished; zero on every
    /// clean run (the fault suite's leak invariant).
    pub staging_leaked_bytes: u64,
    /// Devices excluded by degraded restarts of this query, in exclusion
    /// order (topology device indices). Empty when the query ran healthy.
    pub excluded_devices: Vec<usize>,
    /// Degraded restarts (device-loss replans) this query needed.
    pub degraded_restarts: usize,
    /// Simulated time reached by every attempt of this query, in attempt
    /// order: the time each failed attempt had simulated when its error
    /// surfaced, then the final (successful) attempt's `sim_time`. A healthy
    /// query has exactly one entry, equal to `QueryOutcome::sim_time`.
    pub attempt_sim_times: Vec<SimTime>,
    /// Observed rows-in/rows-out per stage (the *actual* per-stage
    /// selectivities), indexed like `stage_completion`. Counts are
    /// best-effort under fault recovery: blocks replayed through a
    /// quarantine drain are not re-counted.
    pub stage_rows: Vec<(u64, u64)>,
    /// Label of the placement the reoptimizer substituted for this run
    /// (e.g. `"cpu_only(24)"`). `None` when re-optimization is off, no
    /// feedback existed yet, or the search kept the submitted plan.
    pub reopt_applied: Option<String>,
}

impl QueryStats {
    /// Total blocks stolen across all stages.
    pub fn total_blocks_stolen(&self) -> u64 {
        self.blocks_stolen.iter().sum()
    }

    /// End-to-end simulated time including every failed attempt: the sum of
    /// [`Self::attempt_sim_times`]. Equal to `QueryOutcome::sim_time` for a
    /// healthy query; strictly larger after a degraded restart (the time the
    /// lost attempts burned before the loss surfaced is paid, not hidden).
    pub fn total_sim_time(&self) -> SimTime {
        self.attempt_sim_times.iter().fold(SimTime::ZERO, |acc, t| acc.add_nanos(t.as_nanos()))
    }

    /// The largest observed-slowdown EWMA of any device slot (1.0 when
    /// nothing straggled or nothing was observed) — the headline straggler
    /// signal benches and diagnostics report.
    pub fn max_observed_slowdown(&self) -> f64 {
        self.observed_slowdowns.iter().copied().fold(1.0, f64::max)
    }

    /// The *actual* selectivity of stage `stage` (`rows_out / rows_in`);
    /// `None` when the stage saw no input or was never recorded.
    pub fn observed_selectivity(&self, stage: usize) -> Option<f64> {
        let &(rows_in, rows_out) = self.stage_rows.get(stage)?;
        (rows_in > 0).then(|| rows_out as f64 / rows_in as f64)
    }
}

/// The outcome of a query: exact rows plus modeled execution time.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Result rows (group keys followed by aggregate values; a single row for
    /// ungrouped aggregations).
    pub rows: Vec<Vec<i64>>,
    /// Simulated end-to-end execution time on the modeled server.
    pub sim_time: SimTime,
    /// Statistics gathered during execution.
    pub stats: QueryStats,
}

impl QueryOutcome {
    /// Simulated execution time in seconds (the unit of Figures 4 and 5).
    pub fn seconds(&self) -> f64 {
        self.sim_time.as_secs_f64()
    }

    /// Modeled throughput in GB/s given the working-set size in bytes —
    /// the metric §6.2 and §6.4 quote.
    pub fn throughput_gbps(&self, working_set_bytes: f64) -> f64 {
        if self.sim_time == SimTime::ZERO {
            return 0.0;
        }
        working_set_bytes / self.sim_time.as_secs_f64() / 1e9
    }
}

/// A Proteus-like engine instance bound to one (simulated) server.
pub struct Proteus {
    topology: Arc<ServerTopology>,
    catalog: Catalog,
    /// Constants the topology micro-probe measured exactly once, at engine
    /// construction. Every per-query executor (including degraded-restart
    /// attempts) reuses this `Arc`: device exclusion never changes links or
    /// sockets, so the measurement stays valid for the engine's lifetime —
    /// and the shared pointer is what the probe-once test asserts on.
    probed_constants: Arc<CalibratedConstants>,
    /// Engine-lifetime plan-feedback cache: one record per plan fingerprint,
    /// consulted (and refreshed) only by sessions with
    /// `EngineConfig::reopt` enabled. Sessions can inject a different cache
    /// (the `QueryServer` shares one across its whole pool).
    feedback: Arc<FeedbackCache>,
    block_managers: BlockManagerSet,
    memory_managers: MemoryManagerSet,
}

impl Proteus {
    /// An engine on the paper's two-socket, two-GPU server.
    pub fn on_paper_server() -> Self {
        Self::new(ServerTopology::paper_server())
    }

    /// An engine on an arbitrary topology.
    pub fn new(topology: Arc<ServerTopology>) -> Self {
        let nodes: Vec<_> = topology.memory_nodes().iter().map(|m| m.id).collect();
        let capacities: Vec<_> =
            topology.memory_nodes().iter().map(|m| (m.id, m.capacity)).collect();
        let probed_constants = Arc::new(hetex_topology::probe::probe(&topology));
        Self {
            topology,
            catalog: Catalog::new(),
            probed_constants,
            feedback: Arc::new(FeedbackCache::new()),
            block_managers: BlockManagerSet::new(&nodes, DEFAULT_STAGING_BYTES),
            memory_managers: MemoryManagerSet::new(&capacities),
        }
    }

    /// The server topology.
    pub fn topology(&self) -> &Arc<ServerTopology> {
        &self.topology
    }

    /// The constants the construction-time topology micro-probe measured —
    /// shared (by `Arc`) with every query this engine executes.
    pub fn probed_constants(&self) -> &Arc<CalibratedConstants> {
        &self.probed_constants
    }

    /// The engine-lifetime feedback cache behind plan re-optimization, shared
    /// by every session that does not inject its own via
    /// [`QuerySession::reuse_feedback`](crate::session::QuerySession::reuse_feedback).
    pub fn feedback_cache(&self) -> &Arc<FeedbackCache> {
        &self.feedback
    }

    /// The table catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The engine-level per-node block managers backing the device providers'
    /// `getBuffer` surface (Table 1), sized at [`DEFAULT_STAGING_BYTES`].
    /// Query execution does *not* draw from this set: the pipelined executor
    /// builds its own per-execution arenas from `EngineConfig::staging_bytes`
    /// so budgets (and the reported peaks) are per-query observables.
    pub fn block_managers(&self) -> &BlockManagerSet {
        &self.block_managers
    }

    /// The per-node memory managers (state memory).
    pub fn memory_managers(&self) -> &MemoryManagerSet {
        &self.memory_managers
    }

    /// Register a loaded table.
    pub fn register_table(&self, table: StoredTable) {
        self.catalog.register(table);
    }

    /// The heterogeneity-aware plan a query would execute with, rendered as
    /// text (the EXPLAIN of Figure 1e / 2b).
    pub fn explain(&self, plan: &RelNode, config: &EngineConfig) -> Result<String> {
        Ok(self.parallel_plan(plan, config)?.explain())
    }

    /// The heterogeneity-aware plan itself.
    pub fn parallel_plan(&self, plan: &RelNode, config: &EngineConfig) -> Result<HetNode> {
        parallelize(plan, config)
    }

    /// Open a [`QuerySession`](crate::session::QuerySession) on this engine —
    /// the unified entry point for one-shot execution. The serving
    /// counterpart is [`QueryServer::session`](crate::server::QueryServer::session).
    pub fn session(&self) -> crate::session::QuerySession<'_> {
        crate::session::QuerySession::on_engine(self)
    }

    /// Execute a sequential physical plan under the given configuration.
    #[deprecated(note = "use `Proteus::session().execute(plan, config)`")]
    pub fn execute(&self, plan: &RelNode, config: &EngineConfig) -> Result<QueryOutcome> {
        self.execute_with(plan, config, None, None)
    }

    /// Execute with an optional server-lifetime slowdown observer shared
    /// across queries. `None` gives every query a fresh observer.
    #[deprecated(note = "use `Proteus::session().observe(observer).execute(plan, config)`")]
    pub fn execute_observed(
        &self,
        plan: &RelNode,
        config: &EngineConfig,
        observer: Option<Arc<SlowdownObserver>>,
    ) -> Result<QueryOutcome> {
        self.execute_with(plan, config, observer, None)
    }

    /// The session entry point: validate, optionally re-optimize from cached
    /// feedback, execute, and record fresh feedback.
    ///
    /// With `config.reopt` disabled (the default) this is exactly the
    /// pre-reopt engine: validate, then execute the submitted plan — no
    /// fingerprinting, no cache traffic, no rewrites. With it enabled, a
    /// prior run's [`PlanFeedback`] (from `feedback`, defaulting to the
    /// engine-lifetime cache) drives a placement/DOP search; a winning
    /// candidate replaces the submitted placement and the rewritten
    /// configuration passes through every gate the submitted one would —
    /// `validate()` here, then the static verifier ([`Self::verify`], Deny
    /// semantics unchanged) inside the attempt.
    pub(crate) fn execute_with(
        &self,
        plan: &RelNode,
        config: &EngineConfig,
        observer: Option<Arc<SlowdownObserver>>,
        feedback: Option<Arc<FeedbackCache>>,
    ) -> Result<QueryOutcome> {
        config.validate()?;
        if !config.reopt.enabled {
            return self.execute_validated(plan, config, observer);
        }
        let cache = feedback.unwrap_or_else(|| Arc::clone(&self.feedback));
        let fingerprint = plan_fingerprint(plan);
        let mut effective = config.clone();
        let mut applied = None;
        if let Some(prior) = cache.get(fingerprint) {
            let cost =
                CostModel::from_config(config).with_constants(Arc::clone(&self.probed_constants));
            if let Some(decision) = reoptimize(config, &prior, &self.topology, &cost) {
                effective = decision.chosen.apply(config);
                effective.validate()?;
                applied = Some(decision.chosen.label());
            }
        }
        let mut outcome = self.execute_validated(plan, &effective, observer)?;
        outcome.stats.reopt_applied = applied;
        cache.record(Self::distill_feedback(fingerprint, &effective, &outcome));
        Ok(outcome)
    }

    /// Execute a validated configuration.
    ///
    /// The last rung of the fault-recovery ladder lives here: when execution
    /// fails with a structured [`HetError::DeviceLost`] (a bound stage lost
    /// its consumer, or a whole stage died) and `config.fault.degraded_restart`
    /// is on, the lost device is excluded from the topology, the degrees of
    /// parallelism are clamped to the surviving devices — a query losing its
    /// last GPU degrades to CPU-only — and the query is re-planned and
    /// re-executed from scratch. Results are exact either way; the reported
    /// simulated time is that of the final (successful) attempt, with the time
    /// each failed attempt burned recorded in `QueryStats::attempt_sim_times`.
    fn execute_validated(
        &self,
        plan: &RelNode,
        config: &EngineConfig,
        observer: Option<Arc<SlowdownObserver>>,
    ) -> Result<QueryOutcome> {
        let executor = self.query_executor(&self.topology, observer.clone());
        match self.execute_attempt(&self.topology, &executor, plan, config) {
            Err(HetError::DeviceLost { device, .. }) if config.fault.degraded_restart => {
                let burned = executor
                    .take_failed_sim_time()
                    .expect("executor error paths record burned sim time");
                self.execute_degraded(plan, config, device, vec![burned], observer)
            }
            other => other,
        }
    }

    /// Distill one successful run's statistics into the feedback record the
    /// reoptimizer consumes on the next submission of the same plan. `config`
    /// is the placement that was *dispatched*; after a degraded restart the
    /// surviving attempt ran a clamped variant, which the feedback
    /// deliberately ignores — exclusions are transient and the record should
    /// describe the query on the healthy topology.
    fn distill_feedback(
        fingerprint: u64,
        config: &EngineConfig,
        outcome: &QueryOutcome,
    ) -> PlanFeedback {
        let stats = &outcome.stats;
        let stages = stats
            .stage_rows
            .iter()
            .enumerate()
            .map(|(i, &(rows_in, rows_out))| StageObservation {
                rows_in,
                rows_out,
                completion_ns: stats.stage_completion.get(i).map_or(0, |t| t.as_nanos()),
            })
            .collect();
        PlanFeedback {
            fingerprint,
            target: config.target,
            cpu_dop: config.cpu_dop,
            gpu_dop: config.gpu_dop,
            sim_time_ns: outcome.sim_time.as_nanos() as f64,
            observed_slowdowns: stats.observed_slowdowns.clone(),
            stages,
            remote_control_acquisitions: stats.remote_control_acquisitions,
            bytes_transferred: stats.bytes_transferred,
            runs: 1,
        }
    }

    /// A fresh executor for one query (or one degraded attempt): private
    /// memory/link clocks, so concurrent queries never corrupt each other's
    /// simulated accounting, and the engine's construction-time probed
    /// constants, so the micro-probe never re-runs.
    fn query_executor(
        &self,
        topology: &Arc<ServerTopology>,
        observer: Option<Arc<SlowdownObserver>>,
    ) -> Executor {
        let executor = Executor::with_constants(
            topology.with_private_clocks(),
            Arc::clone(&self.probed_constants),
        );
        match observer {
            Some(observer) => executor.with_shared_observer(observer),
            None => executor,
        }
    }

    /// One plan→compile→execute attempt against `topology`/`executor`.
    fn execute_attempt(
        &self,
        topology: &Arc<ServerTopology>,
        executor: &Executor,
        plan: &RelNode,
        config: &EngineConfig,
    ) -> Result<QueryOutcome> {
        let het = parallelize(plan, config)?;
        hetex_core::traits::check_relational_requirements(&het)?;
        let graph = compile(&het, config, topology)?;
        Self::verify(&graph, config, topology)?;
        let result = executor.execute(&graph, &self.catalog, config)?;
        Ok(QueryOutcome {
            rows: result.rows,
            sim_time: result.sim_time,
            stats: QueryStats {
                per_kind: result.per_kind,
                bytes_transferred: result.bytes_transferred,
                stages: graph.stages.len(),
                stage_completion: result.stage_completion,
                wall_time: result.wall_time,
                staging_peaks: result.staging_peaks,
                blocks_stolen: result.blocks_stolen,
                remote_control_acquisitions: result.remote_control_acquisitions,
                observed_slowdowns: result.observed_slowdowns,
                probed_constants: result.probed_constants,
                transient_retries: result.transient_retries,
                recovered_blocks: result.recovered_blocks,
                staging_leaked_bytes: result.staging_leaked_bytes,
                excluded_devices: Vec::new(),
                degraded_restarts: 0,
                attempt_sim_times: vec![result.sim_time],
                stage_rows: result.stage_rows,
                reopt_applied: None,
            },
        })
    }

    /// The pre-execution static analysis pass: verify the compiled stage
    /// graph against the config and topology (`hetex-analysis`), honouring
    /// `config.analysis` — reject on error-severity diagnostics under
    /// [`AnalysisMode::Deny`], print-and-run under [`AnalysisMode::Warn`],
    /// skip under [`AnalysisMode::Off`]. Pure host-side work: it charges no
    /// simulated time.
    fn verify(
        graph: &crate::codegen::StageGraph,
        config: &EngineConfig,
        topology: &Arc<ServerTopology>,
    ) -> Result<()> {
        if config.analysis == AnalysisMode::Off {
            return Ok(());
        }
        let report = hetex_analysis::analyze(graph, config, topology);
        if report.is_clean() {
            return Ok(());
        }
        if config.analysis == AnalysisMode::Deny && report.has_errors() {
            return Err(HetError::Plan(format!(
                "static analysis rejected the plan:\n{}",
                report.render()
            )));
        }
        eprintln!("static analysis findings (executing anyway):\n{report}");
        Ok(())
    }

    /// Degraded restarts after a structured device loss, bounded by the
    /// device count: each round excludes the lost device, clamps the
    /// parallelism degrees to the survivors (retargeting to CPU-only when no
    /// GPU survives) and replans. Another `DeviceLost` excludes the next
    /// device; any other error — or running out of devices — surfaces.
    fn execute_degraded(
        &self,
        plan: &RelNode,
        config: &EngineConfig,
        first_lost: usize,
        mut attempt_sim_times: Vec<SimTime>,
        observer: Option<Arc<SlowdownObserver>>,
    ) -> Result<QueryOutcome> {
        let mut topology = Arc::clone(&self.topology);
        let mut lost = first_lost;
        let mut excluded: Vec<usize> = Vec::new();
        for _ in 0..self.topology.devices().len() {
            topology = topology.with_device_excluded(DeviceId::new(lost))?;
            excluded.push(lost);
            let gpus = topology.gpus().len();
            let cpus = topology.cpu_cores().len();
            let Some(cfg) = config.degraded_for(cpus, gpus) else {
                break;
            };
            cfg.validate()?;
            // A fresh executor: its device clocks and simulated GPUs run
            // against the shrunken topology, placement never sees the
            // excluded devices, and the engine's construction-time probed
            // constants are reused (exclusion changes no link or socket,
            // so the measurement stays valid — and the probe never re-runs).
            let executor = self.query_executor(&topology, observer.clone());
            match self.execute_attempt(&topology, &executor, plan, &cfg) {
                Ok(mut outcome) => {
                    outcome.stats.degraded_restarts = excluded.len();
                    outcome.stats.excluded_devices = excluded;
                    attempt_sim_times.push(outcome.sim_time);
                    outcome.stats.attempt_sim_times = attempt_sim_times;
                    return Ok(outcome);
                }
                Err(HetError::DeviceLost { device, .. }) if !excluded.contains(&device) => {
                    lost = device;
                    attempt_sim_times.push(
                        executor
                            .take_failed_sim_time()
                            .expect("executor error paths record burned sim time"),
                    );
                }
                Err(e) => return Err(e),
            }
        }
        Err(HetError::Execution(format!(
            "degraded restart exhausted: no surviving device can run the query \
             (excluded devices {excluded:?})"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetex_common::{ColumnData, DataType};
    use hetex_jit::{AggSpec, Expr};
    use hetex_storage::TableBuilder;

    fn engine_with_table(rows: usize) -> Proteus {
        engine_on(ServerTopology::paper_server(), rows)
    }

    fn engine_on(topology: Arc<ServerTopology>, rows: usize) -> Proteus {
        let engine = Proteus::new(topology);
        let nodes = engine.topology().cpu_memory_nodes();
        let table = TableBuilder::new("t")
            .column(
                "a",
                DataType::Int32,
                ColumnData::Int32((0..rows as i32).map(|i| i % 1000).collect()),
            )
            .column(
                "b",
                DataType::Int64,
                ColumnData::Int64((0..rows as i64).map(|i| i * 2).collect()),
            )
            .build(&nodes, 8192)
            .unwrap();
        engine.register_table(table);
        engine
    }

    fn sum_where_plan() -> RelNode {
        // SELECT SUM(b) FROM t WHERE a > 42 — the paper's running example.
        RelNode::scan("t", &["a", "b"])
            .filter(Expr::col(0).gt_lit(42))
            .reduce(vec![AggSpec::sum(Expr::col(1))], &["sum_b"])
    }

    fn expected_sum(rows: usize) -> i64 {
        (0..rows as i64).filter(|i| i % 1000 > 42).map(|i| i * 2).sum()
    }

    #[test]
    fn running_example_on_all_targets() {
        let engine = engine_with_table(100_000);
        let expected = expected_sum(100_000);
        for config in
            [EngineConfig::cpu_only(4), EngineConfig::gpu_only(2), EngineConfig::hybrid(8, 2)]
        {
            let outcome = engine.session().execute(&sum_where_plan(), &config).unwrap();
            assert_eq!(outcome.rows, vec![vec![expected]], "target {:?}", config.target);
            assert!(outcome.sim_time > SimTime::ZERO);
            assert!(outcome.seconds() > 0.0);
            assert!(outcome.stats.stages >= 1);
        }
    }

    #[test]
    fn group_by_returns_sorted_groups() {
        let engine = engine_with_table(10_000);
        let plan =
            RelNode::scan("t", &["a", "b"]).group_by(&[0], vec![AggSpec::count()], &["a", "cnt"]);
        let outcome = engine.session().execute(&plan, &EngineConfig::cpu_only(2)).unwrap();
        assert_eq!(outcome.rows.len(), 1000);
        // Sorted by key and each key appears 10 times.
        assert!(outcome.rows.windows(2).all(|w| w[0][0] < w[1][0]));
        assert!(outcome.rows.iter().all(|r| r[1] == 10));
    }

    #[test]
    fn explain_shows_hetexchange_operators() {
        let engine = engine_with_table(1000);
        let text = engine.explain(&sum_where_plan(), &EngineConfig::hybrid(24, 2)).unwrap();
        assert!(text.contains("router"));
        assert!(text.contains("cpu2gpu"));
        assert!(text.contains("segmenter t"));
    }

    #[test]
    fn missing_table_is_a_catalog_error() {
        let engine = Proteus::on_paper_server();
        let err =
            engine.session().execute(&sum_where_plan(), &EngineConfig::cpu_only(1)).unwrap_err();
        assert_eq!(err.category(), "catalog");
    }

    #[test]
    fn invalid_config_is_rejected_before_execution() {
        let engine = engine_with_table(100);
        assert!(engine.session().execute(&sum_where_plan(), &EngineConfig::cpu_only(0)).is_err());
    }

    #[test]
    fn losing_every_gpu_degrades_the_query_to_cpu_only() {
        use hetex_topology::FaultPlan;
        // Both GPUs are dead from t=0 but the query is pinned GPU-only: the
        // first attempt loses a device, the restart ladder excludes it, the
        // retry loses the other one, and the final restart retargets the
        // query to CPU-only. Rows must be exact throughout.
        let topology = ServerTopology::paper_server();
        let gpus: Vec<DeviceId> = topology.gpus();
        let faulted = topology
            .with_fault_plan(
                FaultPlan::new()
                    .abort_device(gpus[0], SimTime::ZERO)
                    .abort_device(gpus[1], SimTime::ZERO),
            )
            .unwrap();
        let engine = engine_on(faulted, 100_000);
        let outcome =
            engine.session().execute(&sum_where_plan(), &EngineConfig::gpu_only(2)).unwrap();
        assert_eq!(outcome.rows, vec![vec![expected_sum(100_000)]]);
        assert!(
            outcome.stats.degraded_restarts >= 1,
            "a GPU-only query with no live GPU cannot succeed without restarting"
        );
        assert_eq!(outcome.stats.excluded_devices.len(), outcome.stats.degraded_restarts);
        assert!(outcome.stats.excluded_devices.iter().all(|d| gpus.contains(&DeviceId::new(*d))));
        // The surviving run really is CPU-only.
        assert!(outcome.stats.per_kind.contains_key(&DeviceKind::CpuCore));
        let gpu_blocks = outcome.stats.per_kind.get(&DeviceKind::Gpu).map_or(0, |s| s.blocks);
        assert_eq!(gpu_blocks, 0, "no block may be charged to a dead GPU");
        assert_eq!(outcome.stats.staging_leaked_bytes, 0);
    }

    #[test]
    fn degraded_restart_can_be_disabled() {
        use hetex_common::FaultConfig;
        use hetex_topology::FaultPlan;
        let topology = ServerTopology::paper_server();
        let gpus = topology.gpus();
        let faulted = topology
            .with_fault_plan(
                FaultPlan::new()
                    .abort_device(gpus[0], SimTime::ZERO)
                    .abort_device(gpus[1], SimTime::ZERO),
            )
            .unwrap();
        let engine = engine_on(faulted, 10_000);
        let config = EngineConfig::gpu_only(2).with_fault(FaultConfig::disabled());
        let err = engine.session().execute(&sum_where_plan(), &config).unwrap_err();
        assert_eq!(err.category(), "device-lost", "got: {err}");
    }

    #[test]
    fn throughput_helper_uses_simulated_time() {
        let engine = engine_with_table(100_000);
        let outcome =
            engine.session().execute(&sum_where_plan(), &EngineConfig::cpu_only(8)).unwrap();
        let bytes = (100_000 * (4 + 8)) as f64;
        assert!(outcome.throughput_gbps(bytes) > 0.0);
    }
}
