//! The plan rewriter: from a sequential physical plan to a heterogeneity-aware
//! plan.
//!
//! This reproduces the step-by-step construction of Figure 1: starting from a
//! device- and parallelism-agnostic plan (Figure 1a), the rewriter inserts
//!
//! 1. device-crossing operators where execution moves between CPUs and GPUs
//!    (Figure 1b),
//! 2. routers to establish the degree of parallelism per device type
//!    (Figure 1c),
//! 3. mem-move operators so every relational operator sees local data
//!    (Figure 1d), and
//! 4. pack/unpack operators to translate between block-granularity movement
//!    and tuple-granularity execution (Figure 1e).
//!
//! The paper leaves optimizer-driven placement as future work and inserts the
//! operators heuristically (§5); we do the same, parameterized by the
//! [`EngineConfig`]: CPU-only, GPU-only, or hybrid targets, with the configured
//! degrees of parallelism. Setting `hetexchange_enabled = false` reproduces the
//! "without HetExchange" single-device plans used in Figures 7 and 8 (no
//! routers, DOP 1).

use crate::plan::{DeviceTarget, HetNode, RelNode, RouterPolicy};
use hetex_common::config::ExecutionTarget;
use hetex_common::{EngineConfig, HetError, Result};

/// Degree-of-parallelism targets derived from an engine configuration.
fn targets_of(config: &EngineConfig) -> Vec<DeviceTarget> {
    let mut targets = Vec::new();
    match config.target {
        ExecutionTarget::CpuOnly => targets.push(DeviceTarget::cpu(config.cpu_dop.max(1))),
        ExecutionTarget::GpuOnly => targets.push(DeviceTarget::gpu(config.gpu_dop.max(1))),
        ExecutionTarget::Hybrid => {
            if config.cpu_dop > 0 {
                targets.push(DeviceTarget::cpu(config.cpu_dop));
            }
            if config.gpu_dop > 0 {
                targets.push(DeviceTarget::gpu(config.gpu_dop));
            }
        }
    }
    if targets.is_empty() {
        targets.push(DeviceTarget::cpu(1));
    }
    targets
}

/// True if any GPU participates in the main part of the plan.
fn uses_gpu(config: &EngineConfig) -> bool {
    matches!(config.target, ExecutionTarget::GpuOnly | ExecutionTarget::Hybrid)
        && config.gpu_dop > 0
}

/// Rewrite a sequential physical plan into a heterogeneity-aware plan.
pub fn parallelize(plan: &RelNode, config: &EngineConfig) -> Result<HetNode> {
    config.validate()?;
    let het = augment(plan, config, true)?;
    Ok(het)
}

fn augment(node: &RelNode, config: &EngineConfig, is_root: bool) -> Result<HetNode> {
    let het = match node {
        RelNode::Scan { table, projection } => scan_chain(table, projection, config, false),
        RelNode::Filter { input, predicate } => HetNode::Filter {
            input: Box::new(augment(input, config, false)?),
            predicate: predicate.clone(),
        },
        RelNode::Project { input, exprs, names } => HetNode::Project {
            input: Box::new(augment(input, config, false)?),
            exprs: exprs.clone(),
            names: names.clone(),
        },
        RelNode::HashJoin { build, probe, build_key, probe_key, payload } => HetNode::HashJoin {
            build: Box::new(augment_build_side(build, config)?),
            probe: Box::new(augment(probe, config, false)?),
            build_key: *build_key,
            probe_key: *probe_key,
            payload: payload.clone(),
        },
        RelNode::Reduce { input, aggs, names } => HetNode::Reduce {
            input: Box::new(augment(input, config, false)?),
            aggs: aggs.clone(),
            names: names.clone(),
        },
        RelNode::GroupBy { input, keys, aggs, names } => HetNode::GroupBy {
            input: Box::new(augment(input, config, false)?),
            keys: keys.clone(),
            aggs: aggs.clone(),
            names: names.clone(),
        },
    };

    // At the root, gather the per-device partial results into a single CPU
    // consumer: gpu2cpu brings GPU-side results back, and a union router
    // funnels every instance into one stream (pipelines 1-3 of Figure 2).
    if is_root && config.hetexchange_enabled {
        let mut gathered = het;
        if uses_gpu(config) {
            gathered = HetNode::Gpu2Cpu { input: Box::new(gathered) };
        }
        gathered = HetNode::Router {
            input: Box::new(gathered),
            policy: RouterPolicy::Union,
            targets: vec![DeviceTarget::cpu(1)],
        };
        return Ok(gathered);
    }
    Ok(het)
}

/// The chain that turns a base-table scan into local, unpacked tuples on the
/// participating devices: segmenter → router → mem-move → (cpu2gpu) → unpack.
fn scan_chain(
    table: &str,
    projection: &[String],
    config: &EngineConfig,
    build_side: bool,
) -> HetNode {
    let mut node = HetNode::Segmenter { table: table.to_string(), projection: projection.to_vec() };
    if config.hetexchange_enabled {
        let targets = if build_side {
            // Dimension (build) sides are small; parallelize them over CPU
            // cores only and broadcast the result to the GPUs afterwards.
            vec![DeviceTarget::cpu(config.cpu_dop.clamp(1, 8))]
        } else {
            targets_of(config)
        };
        node =
            HetNode::Router { input: Box::new(node), policy: RouterPolicy::LeastLoaded, targets };
    }
    node = HetNode::MemMove { input: Box::new(node), broadcast: false };
    if !build_side && uses_gpu(config) {
        node = HetNode::Cpu2Gpu { input: Box::new(node) };
    }
    HetNode::Unpack { input: Box::new(node) }
}

/// The build side of a join: scan and filter the dimension on the CPU, pack
/// the surviving tuples, broadcast them to every device that will probe, and
/// unpack into the hash-table build. A router above the packed dimension
/// parallelizes the build itself — multiple CPU pipeline instances insert
/// into the shared hash table concurrently, exactly like any other
/// router-encapsulated pipeline (a single-instance build would serialize the
/// whole query behind one core's random-access bandwidth).
fn augment_build_side(build: &RelNode, config: &EngineConfig) -> Result<HetNode> {
    let inner = augment_build_inner(build, config)?;
    let packed = HetNode::Pack { input: Box::new(inner), hash_partitions: None };
    let mut node = packed;
    if config.hetexchange_enabled {
        node = HetNode::Router {
            input: Box::new(node),
            policy: RouterPolicy::LeastLoaded,
            targets: vec![DeviceTarget::cpu(config.cpu_dop.clamp(1, 8))],
        };
    }
    let moved = HetNode::MemMove { input: Box::new(node), broadcast: uses_gpu(config) };
    Ok(HetNode::Unpack { input: Box::new(moved) })
}

fn augment_build_inner(node: &RelNode, config: &EngineConfig) -> Result<HetNode> {
    match node {
        RelNode::Scan { table, projection } => Ok(scan_chain(table, projection, config, true)),
        RelNode::Filter { input, predicate } => Ok(HetNode::Filter {
            input: Box::new(augment_build_inner(input, config)?),
            predicate: predicate.clone(),
        }),
        RelNode::Project { input, exprs, names } => Ok(HetNode::Project {
            input: Box::new(augment_build_inner(input, config)?),
            exprs: exprs.clone(),
            names: names.clone(),
        }),
        RelNode::HashJoin { build, probe, build_key, probe_key, payload } => {
            // Snowflake-shaped build sides (a dimension joined with another
            // dimension) are supported by recursing on both sides.
            Ok(HetNode::HashJoin {
                build: Box::new(augment_build_side(build, config)?),
                probe: Box::new(augment_build_inner(probe, config)?),
                build_key: *build_key,
                probe_key: *probe_key,
                payload: payload.clone(),
            })
        }
        RelNode::Reduce { .. } | RelNode::GroupBy { .. } => {
            Err(HetError::Plan("aggregations are not supported on the build side of a join".into()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{check_relational_requirements, derive_traits};
    use hetex_jit::{AggSpec, Expr};

    fn sample_plan() -> RelNode {
        let dates = RelNode::scan("date", &["d_datekey", "d_year"])
            .filter(Expr::col(1).eq(Expr::lit(1993)));
        RelNode::scan("lineorder", &["lo_orderdate", "lo_discount", "lo_revenue"])
            .filter(Expr::col(1).between(1, 3))
            .hash_join(dates, 0, 0, &[1])
            .reduce(vec![AggSpec::sum(Expr::col(2))], &["revenue"])
    }

    #[test]
    fn hybrid_plan_contains_all_four_operator_families() {
        let config = EngineConfig::hybrid(24, 2);
        let het = parallelize(&sample_plan(), &config).unwrap();
        let text = het.explain();
        assert!(text.contains("router"), "{text}");
        assert!(text.contains("cpu2gpu"), "{text}");
        assert!(text.contains("gpu2cpu"), "{text}");
        assert!(text.contains("mem-move"), "{text}");
        assert!(text.contains("unpack"), "{text}");
        assert!(text.contains("pack"), "{text}");
        assert!(text.contains("segmenter lineorder"), "{text}");
        assert!(text.contains("segmenter date"), "{text}");
        // Both device types appear as router targets.
        assert!(text.contains("24xcpu"), "{text}");
        assert!(text.contains("2xgpu"), "{text}");
        // The dimension build side is broadcast.
        assert!(text.contains("mem-move (broadcast)"), "{text}");
        assert!(het.hetexchange_operator_count() >= 8);
    }

    #[test]
    fn relational_operators_always_get_local_unpacked_input() {
        for config in
            [EngineConfig::cpu_only(8), EngineConfig::gpu_only(2), EngineConfig::hybrid(16, 2)]
        {
            let het = parallelize(&sample_plan(), &config).unwrap();
            check_relational_requirements(&het).unwrap();
        }
    }

    #[test]
    fn cpu_only_plans_have_no_device_crossings() {
        let het = parallelize(&sample_plan(), &EngineConfig::cpu_only(16)).unwrap();
        let text = het.explain();
        assert!(!text.contains("cpu2gpu"));
        assert!(!text.contains("gpu2cpu"));
        assert!(!text.contains("broadcast"));
        let traits = derive_traits(&het);
        assert_eq!(traits.device, hetex_topology::DeviceKind::CpuCore);
    }

    #[test]
    fn gpu_only_plans_cross_into_the_gpu_and_back() {
        let het = parallelize(&sample_plan(), &EngineConfig::gpu_only(2)).unwrap();
        let text = het.explain();
        assert!(text.contains("cpu2gpu"));
        assert!(text.contains("gpu2cpu"));
        assert!(text.contains("2xgpu"));
        assert!(!text.contains("xcpu, "), "main router should target GPUs only: {text}");
    }

    #[test]
    fn disabling_hetexchange_removes_routers() {
        let mut config = EngineConfig::cpu_only(1);
        config.hetexchange_enabled = false;
        let het = parallelize(&sample_plan(), &config).unwrap();
        let text = het.explain();
        assert!(!text.contains("router"));
        // Data-flow conversions are still present: execution still needs
        // blocks unpacked and local.
        assert!(text.contains("unpack"));
        assert!(text.contains("mem-move"));
    }

    #[test]
    fn preserves_output_names_and_validates_config() {
        let het = parallelize(&sample_plan(), &EngineConfig::hybrid(4, 1)).unwrap();
        assert_eq!(het.output_names(), vec!["revenue"]);
        let bad = EngineConfig::cpu_only(0);
        assert!(parallelize(&sample_plan(), &bad).is_err());
    }

    #[test]
    fn aggregation_on_build_side_is_rejected() {
        let bad = RelNode::scan("fact", &["k"]).hash_join(
            RelNode::scan("dim", &["k"]).reduce(vec![AggSpec::count()], &["c"]),
            0,
            0,
            &[0],
        );
        assert!(parallelize(
            &bad.reduce(vec![AggSpec::count()], &["c"]),
            &EngineConfig::cpu_only(2)
        )
        .is_err());
    }
}
