//! The router operator: parallelism encapsulation on the control plane.
//!
//! §3.1: the router "only operates on the control plane. A task refers to the
//! target input data via a block handle. The router transfers the block handle
//! from the producer to the consumer but not the actual data." It decides the
//! degree of parallelism, instantiates its consumers, pins them to devices
//! (affinity), and routes handles according to a pluggable policy. Policies
//! never look at tuples: hash routing uses the hash tag the hash-pack operator
//! stamped on the handle, and broadcast routing uses the target tag stamped by
//! a multicasting mem-move.

use crate::plan::{DeviceTarget, RouterPolicy};
use hetex_common::{BlockMeta, HetError, Result};
use hetex_topology::{Affinity, DeviceId, DeviceKind, ServerTopology};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// One consumer instance the router fans out to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConsumerSlot {
    /// Device type of the instance.
    pub kind: DeviceKind,
    /// CPU-core / GPU affinity pair assigned by the router (§4.2).
    pub affinity: Affinity,
}

/// The runtime router. Borrows its consumer slots (the slot plan lives in the
/// compiled stage graph); routing itself is lock-free.
#[derive(Debug)]
pub struct Router<'a> {
    policy: RouterPolicy,
    consumers: &'a [ConsumerSlot],
    cursor: AtomicUsize,
}

impl<'a> Router<'a> {
    /// A router with the given policy and consumer instances.
    pub fn new(policy: RouterPolicy, consumers: &'a [ConsumerSlot]) -> Result<Self> {
        if consumers.is_empty() {
            return Err(HetError::Plan("router needs at least one consumer".into()));
        }
        if policy == RouterPolicy::Union && consumers.len() != 1 {
            return Err(HetError::Plan(
                "a union router merges producers into exactly one consumer".into(),
            ));
        }
        Ok(Self { policy, consumers, cursor: AtomicUsize::new(0) })
    }

    /// Instantiate consumer slots for the given targets on a topology,
    /// pinning CPU instances to interleaved cores and GPU instances to GPUs —
    /// the affinity assignment of §4.2. Every slot gets *both* a CPU and a GPU
    /// affinity (inherited by the pipelines it instantiates); only the one
    /// matching the slot's device kind is used by the slot itself.
    pub fn plan_consumers(
        targets: &[DeviceTarget],
        topology: &ServerTopology,
    ) -> Result<Vec<ConsumerSlot>> {
        Self::plan_consumers_offset(targets, topology, 0)
    }

    /// Like [`Self::plan_consumers`], but rotating the interleaved core list
    /// by `offset` cores. The pipelined executor runs stages concurrently, so
    /// the planner staggers each stage's CPU instances across the topology —
    /// concurrent pipelines land on disjoint cores when enough exist instead
    /// of oversubscribing the same few.
    pub fn plan_consumers_offset(
        targets: &[DeviceTarget],
        topology: &ServerTopology,
        offset: usize,
    ) -> Result<Vec<ConsumerSlot>> {
        let cores = topology.cpu_cores_interleaved();
        let gpus = topology.gpus();
        let mut slots = Vec::new();
        for target in targets {
            match target.kind {
                DeviceKind::CpuCore => {
                    if target.dop > cores.len() {
                        return Err(HetError::Config(format!(
                            "requested {} CPU instances, topology has {} cores",
                            target.dop,
                            cores.len()
                        )));
                    }
                    for i in 0..target.dop {
                        let core = cores[(offset + i) % cores.len()];
                        let gpu = gpus.get(i % gpus.len().max(1)).copied();
                        slots.push(ConsumerSlot {
                            kind: DeviceKind::CpuCore,
                            affinity: Affinity::new(Some(core), gpu),
                        });
                    }
                }
                DeviceKind::Gpu => {
                    if target.dop > gpus.len() {
                        return Err(HetError::Config(format!(
                            "requested {} GPU instances, topology has {} GPUs",
                            target.dop,
                            gpus.len()
                        )));
                    }
                    for i in 0..target.dop {
                        let gpu = gpus[i % gpus.len()];
                        // The CPU half of the affinity hosts the instance's
                        // CPU-side work (kernel launches, transfers). It must
                        // honour the same stagger `offset` as the CPU slots:
                        // without it, every concurrent stage's GPU instances
                        // collided on host cores 0, 1, … while the CPU slots
                        // were carefully spread apart.
                        let core = cores.get((offset + i) % cores.len().max(1)).copied();
                        slots.push(ConsumerSlot {
                            kind: DeviceKind::Gpu,
                            affinity: Affinity::new(core, Some(gpu)),
                        });
                    }
                }
            }
        }
        Ok(slots)
    }

    /// The routing policy.
    pub fn policy(&self) -> RouterPolicy {
        self.policy
    }

    /// The consumer instances.
    pub fn consumers(&self) -> &[ConsumerSlot] {
        self.consumers
    }

    /// Degree of parallelism this router establishes.
    pub fn dop(&self) -> usize {
        self.consumers.len()
    }

    /// Route one block handle (by its metadata) to a consumer index.
    ///
    /// `loads` is the current load of each consumer (e.g. its simulated clock
    /// in nanoseconds); it is only consulted by the least-loaded policy and
    /// may be empty for the others.
    pub fn route(&self, meta: &BlockMeta, loads: &[u64]) -> Result<usize> {
        let n = self.consumers.len();
        match self.policy {
            RouterPolicy::Union => Ok(0),
            RouterPolicy::RoundRobin => Ok(self.cursor.fetch_add(1, Ordering::Relaxed) % n),
            RouterPolicy::LeastLoaded => {
                if loads.len() == n {
                    // Rotate the scan origin so ties break round-robin:
                    // concurrent producers routing against momentarily equal
                    // (or stale) load estimates must not stampede the same
                    // consumer index.
                    let start = self.cursor.fetch_add(1, Ordering::Relaxed) % n;
                    let best =
                        (0..n).map(|off| (start + off) % n).min_by_key(|&i| loads[i]).unwrap_or(0);
                    Ok(best)
                } else if loads.is_empty() {
                    // An empty vector is a legitimate "no load information"
                    // signal: degrade to round-robin.
                    Ok(self.cursor.fetch_add(1, Ordering::Relaxed) % n)
                } else {
                    // A non-empty vector of the wrong length is a caller bug
                    // (estimates indexed against some other consumer set);
                    // routing on garbage silently misbalances the query, so
                    // fail loudly instead.
                    Err(HetError::Plan(format!(
                        "least-loaded routing got {} load estimates for {n} consumers",
                        loads.len()
                    )))
                }
            }
            RouterPolicy::Hash => {
                let tag = meta.hash_partition.ok_or_else(|| {
                    HetError::Plan(
                        "hash routing requires hash-pack to tag blocks with a partition".into(),
                    )
                })?;
                Ok((tag % n as u64) as usize)
            }
            RouterPolicy::Target => {
                let target = meta.broadcast_target.ok_or_else(|| {
                    HetError::Plan(
                        "target routing requires mem-move to tag blocks with a broadcast target"
                            .into(),
                    )
                })?;
                if target >= n {
                    return Err(HetError::Plan(format!(
                        "broadcast target {target} out of range for {n} consumers"
                    )));
                }
                Ok(target)
            }
        }
    }

    /// Devices (by id) that the consumers of this router execute on, in slot
    /// order — the executor uses this to create one worker per slot.
    pub fn consumer_devices(&self) -> Vec<Option<DeviceId>> {
        self.consumers.iter().map(|slot| slot.affinity.for_kind(slot.kind)).collect()
    }
}

/// Incremental, lock-free load estimates for a router's consumers.
///
/// The pipelined executor routes blocks from many producer workers
/// concurrently, so the least-loaded policy's per-consumer load accumulator
/// cannot be a serial pre-pass vector any more: it is a vector of atomics.
/// Each producer projects `load[i] + cost[i]` for every consumer, lets the
/// router pick, and commits the winner's cost with a single `fetch_add`.
/// Races between concurrent routing decisions can momentarily over- or
/// under-estimate a consumer's load; that only perturbs the greedy balancing
/// heuristic (exactly like the paper's feedback-driven router, whose load
/// signals are also slightly stale), never correctness.
#[derive(Debug)]
pub struct LoadEstimator {
    loads: Vec<AtomicU64>,
}

impl LoadEstimator {
    /// An estimator with one zeroed accumulator per consumer.
    pub fn new(consumers: usize) -> Self {
        Self { loads: (0..consumers).map(|_| AtomicU64::new(0)).collect() }
    }

    /// Number of consumers tracked.
    pub fn len(&self) -> usize {
        self.loads.len()
    }

    /// True when tracking no consumers.
    pub fn is_empty(&self) -> bool {
        self.loads.is_empty()
    }

    /// Projected completion time per consumer if the block were assigned to
    /// it: current load plus the block's estimated `costs[i]` on consumer `i`.
    pub fn projected(&self, costs: &[u64]) -> Vec<u64> {
        self.loads
            .iter()
            .zip(costs)
            .map(|(load, &cost)| load.load(Ordering::Relaxed).saturating_add(cost))
            .collect()
    }

    /// Like [`Self::projected`], with an additive per-consumer `penalties[i]`
    /// term and a `gate_ns` floor. This is a *mechanism*: the values of both
    /// terms are produced by the unified cost model (`crate::cost`), which
    /// prices each consumer node's staging-arena occupancy into the penalty
    /// (so the least-loaded policy steers blocks away from memory-starved
    /// nodes before their producers start parking on leases) and estimates
    /// the gate from the dependency's critical path.
    ///
    /// `gate_ns` is the estimated opening time of the consumer stage's
    /// dependency gate (0 for ungated stages): none of a gated stage's
    /// backlog can start before the gate opens, so each projection is the
    /// absolute completion estimate `gate + load + cost + penalty`. The gate
    /// is shared by every consumer of the stage, so it never changes the
    /// *ranking* by itself — its value is that the caller prices gated
    /// blocks' costs differently (a transfer scheduled while the gate is
    /// still closed is hidden by it), and the projection stays an honest
    /// completion time rather than a unitless score.
    pub fn projected_with_penalty(
        &self,
        costs: &[u64],
        penalties: &[u64],
        gate_ns: u64,
    ) -> Vec<u64> {
        self.projected_with_feedback(costs, penalties, gate_ns, &[])
    }

    /// Like [`Self::projected_with_penalty`], with each consumer's
    /// device-axis term — its committed backlog plus this block's cost, the
    /// part of the projection its *device* must work off — multiplied by
    /// `slowdowns[i]`, the consumer's observed-slowdown EWMA (see
    /// `crate::cost::SlowdownObserver`). This is the routing half of the
    /// calibration loop: committed loads keep pricing the *nominal* profile
    /// (exactly what was committed), and the observed charged-vs-nominal
    /// ratio re-scales the whole device term at projection time, so a hidden
    /// 8× straggler's projections grow 8× and it stops receiving new blocks.
    /// The gate floor (shared by every consumer) and the staging-occupancy
    /// penalty (memory pressure, not device speed) stay un-scaled.
    ///
    /// An empty `slowdowns` (or a slowdown of exactly 1.0 — healthy devices
    /// and toggled-off feedback both read exactly 1.0) keeps the projection
    /// in the integer domain, bit-identical to the pre-calibration math.
    pub fn projected_with_feedback(
        &self,
        costs: &[u64],
        penalties: &[u64],
        gate_ns: u64,
        slowdowns: &[f64],
    ) -> Vec<u64> {
        self.loads
            .iter()
            .zip(costs)
            .zip(penalties)
            .enumerate()
            .map(|(i, ((load, &cost), &penalty))| {
                let device_ns = load.load(Ordering::Relaxed).saturating_add(cost);
                let slowdown = slowdowns.get(i).copied().unwrap_or(1.0);
                let device_ns = if slowdown == 1.0 {
                    device_ns
                } else {
                    (device_ns as f64 * slowdown.max(1.0)) as u64
                };
                gate_ns.saturating_add(device_ns).saturating_add(penalty)
            })
            .collect()
    }

    /// Commit `cost` to consumer `idx`'s load (after routing a block to it).
    pub fn commit(&self, idx: usize, cost: u64) {
        if let Some(load) = self.loads.get(idx) {
            load.fetch_add(cost, Ordering::Relaxed);
        }
    }

    /// Remove `cost` from consumer `idx`'s load — the inverse of
    /// [`Self::commit`], used when adaptive re-routing steals a block away
    /// from the consumer it was committed to. Saturating: steal-time cost
    /// re-estimates can differ from the routing-time commit (the block was
    /// localized in between), and the estimator must never underflow into a
    /// "negative" (huge) load.
    pub fn decommit(&self, idx: usize, cost: u64) {
        if let Some(load) = self.loads.get(idx) {
            let _ = load.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(cost))
            });
        }
    }

    /// The largest per-consumer load tracked — an estimate of the stage's
    /// completion time, which downstream gated stages use as their gate-time
    /// estimate while the build is still running.
    pub fn max_load(&self) -> u64 {
        self.loads.iter().map(|l| l.load(Ordering::Relaxed)).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetex_common::{BlockId, MemoryNodeId};

    fn meta() -> BlockMeta {
        BlockMeta::new(BlockId::new(0), MemoryNodeId::new(0))
    }

    fn slots(n: usize) -> Vec<ConsumerSlot> {
        (0..n)
            .map(|i| ConsumerSlot {
                kind: DeviceKind::CpuCore,
                affinity: Affinity::cpu(DeviceId::new(i)),
            })
            .collect()
    }

    #[test]
    fn round_robin_cycles_through_consumers() {
        let slots = slots(3);
        let router = Router::new(RouterPolicy::RoundRobin, &slots).unwrap();
        let picks: Vec<usize> = (0..6).map(|_| router.route(&meta(), &[]).unwrap()).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
        assert_eq!(router.dop(), 3);
    }

    #[test]
    fn least_loaded_picks_the_idle_consumer() {
        let slots = slots(3);
        let router = Router::new(RouterPolicy::LeastLoaded, &slots).unwrap();
        assert_eq!(router.route(&meta(), &[500, 100, 900]).unwrap(), 1);
        assert_eq!(router.route(&meta(), &[100, 100, 50]).unwrap(), 2);
        // Missing load information degrades to round-robin rather than failing.
        let a = router.route(&meta(), &[]).unwrap();
        let b = router.route(&meta(), &[]).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn least_loaded_rejects_wrong_length_load_vectors() {
        // Regression test: a non-empty loads vector of the wrong length is a
        // caller bug (estimates for some other consumer set) and used to be
        // silently routed round-robin — now it fails the plan.
        let slots = slots(3);
        let router = Router::new(RouterPolicy::LeastLoaded, &slots).unwrap();
        let err = router.route(&meta(), &[100, 200]).unwrap_err();
        assert_eq!(err.category(), "plan");
        assert!(err.to_string().contains("2 load estimates for 3 consumers"), "{err}");
        assert!(router.route(&meta(), &[1, 2, 3, 4]).is_err());
        // The empty "no info" signal still degrades gracefully.
        assert!(router.route(&meta(), &[]).is_ok());
    }

    #[test]
    fn hash_routing_uses_the_handle_tag_only() {
        let slots = slots(4);
        let router = Router::new(RouterPolicy::Hash, &slots).unwrap();
        let mut m = meta();
        m.hash_partition = Some(11);
        assert_eq!(router.route(&m, &[]).unwrap(), 11 % 4);
        // Untagged blocks are a planning bug.
        assert!(router.route(&meta(), &[]).is_err());
    }

    #[test]
    fn target_routing_follows_broadcast_tags() {
        let slots = slots(2);
        let router = Router::new(RouterPolicy::Target, &slots).unwrap();
        let mut m = meta();
        m.broadcast_target = Some(1);
        assert_eq!(router.route(&m, &[]).unwrap(), 1);
        m.broadcast_target = Some(5);
        assert!(router.route(&m, &[]).is_err());
        assert!(router.route(&meta(), &[]).is_err());
    }

    #[test]
    fn union_router_requires_single_consumer() {
        let two = slots(2);
        assert!(Router::new(RouterPolicy::Union, &two).is_err());
        let one = slots(1);
        let router = Router::new(RouterPolicy::Union, &one).unwrap();
        assert_eq!(router.route(&meta(), &[]).unwrap(), 0);
        assert!(Router::new(RouterPolicy::RoundRobin, &[]).is_err());
    }

    #[test]
    fn plan_consumers_assigns_both_affinities() {
        let topology = ServerTopology::paper_server();
        let slots =
            Router::plan_consumers(&[DeviceTarget::cpu(4), DeviceTarget::gpu(2)], &topology)
                .unwrap();
        assert_eq!(slots.len(), 6);
        let cpu_slots: Vec<_> = slots.iter().filter(|s| s.kind == DeviceKind::CpuCore).collect();
        let gpu_slots: Vec<_> = slots.iter().filter(|s| s.kind == DeviceKind::Gpu).collect();
        assert_eq!(cpu_slots.len(), 4);
        assert_eq!(gpu_slots.len(), 2);
        // Every slot carries both affinities (§4.2) …
        assert!(slots.iter().all(|s| s.affinity.cpu_core.is_some()));
        assert!(slots.iter().all(|s| s.affinity.gpu.is_some()));
        // … and GPU slots are pinned to distinct GPUs.
        assert_ne!(gpu_slots[0].affinity.gpu, gpu_slots[1].affinity.gpu);
        // CPU instances are interleaved across sockets.
        let c0 = cpu_slots[0].affinity.cpu_core.unwrap();
        let c1 = cpu_slots[1].affinity.cpu_core.unwrap();
        assert_ne!(topology.device(c0).unwrap().socket, topology.device(c1).unwrap().socket);
    }

    #[test]
    fn load_estimator_projects_and_commits_concurrently() {
        let est = LoadEstimator::new(3);
        assert_eq!(est.len(), 3);
        assert!(!est.is_empty());
        assert_eq!(est.projected(&[5, 10, 15]), vec![5, 10, 15]);
        est.commit(1, 100);
        assert_eq!(est.projected(&[5, 10, 15]), vec![5, 110, 15]);
        // Concurrent commits accumulate without loss.
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        est.commit(0, 1);
                    }
                });
            }
        });
        assert_eq!(est.projected(&[0, 0, 0])[0], 4000);
        // Out-of-range commits are ignored rather than panicking.
        est.commit(7, 1);
    }

    #[test]
    fn occupancy_penalties_shift_the_projection() {
        let est = LoadEstimator::new(3);
        est.commit(0, 100);
        // Without penalties consumer 0 is the most loaded…
        assert_eq!(est.projected(&[10, 10, 10]), vec![110, 10, 10]);
        // …and a starved-arena penalty on consumer 1 re-ranks it below 2.
        assert_eq!(est.projected_with_penalty(&[10, 10, 10], &[0, 500, 0], 0), vec![110, 510, 10]);
    }

    #[test]
    fn gate_term_shifts_projections_to_absolute_completions() {
        let est = LoadEstimator::new(3);
        est.commit(0, 400);
        assert_eq!(est.projected_with_penalty(&[10, 300, 300], &[0, 0, 0], 0), vec![410, 300, 300]);
        // The gate is a shared offset: projections become absolute
        // completion estimates (gate + queued work + this block)…
        assert_eq!(
            est.projected_with_penalty(&[10, 300, 300], &[0, 0, 0], 500),
            vec![910, 800, 800]
        );
        // …and in particular queued backlog is never forgotten under the
        // gate (an earlier floor-based formulation dropped it, flooding the
        // cheapest consumer with every pre-gate block).
        assert!(
            est.projected_with_penalty(&[10, 300, 300], &[0, 0, 0], 500)[0]
                > est.projected_with_penalty(&[10, 300, 300], &[0, 0, 0], 500)[1]
        );
    }

    #[test]
    fn feedback_scales_the_device_axis_only() {
        let est = LoadEstimator::new(3);
        est.commit(0, 400);
        est.commit(1, 400);
        // Unit slowdowns (and an empty vector) are bit-identical to the
        // penalty projection.
        assert_eq!(
            est.projected_with_feedback(&[100, 100, 100], &[0, 7, 0], 50, &[1.0, 1.0, 1.0]),
            est.projected_with_penalty(&[100, 100, 100], &[0, 7, 0], 50)
        );
        // An observed 8x straggler's backlog-plus-block term scales by 8,
        // while the gate floor and the occupancy penalty stay un-scaled.
        let projected =
            est.projected_with_feedback(&[100, 100, 100], &[0, 7, 0], 50, &[8.0, 1.0, 1.0]);
        assert_eq!(projected, vec![50 + 500 * 8, 50 + 500 + 7, 50 + 100]);
        // Sub-nominal slowdowns are clamped: feedback never makes a device
        // look faster than its profile.
        assert_eq!(
            est.projected_with_feedback(&[100, 100, 100], &[0, 0, 0], 0, &[0.5, 1.0, 1.0])[0],
            500
        );
    }

    #[test]
    fn decommit_moves_load_and_saturates() {
        let est = LoadEstimator::new(2);
        est.commit(0, 100);
        est.commit(1, 40);
        assert_eq!(est.max_load(), 100);
        // A steal moves the cost from the victim to the thief.
        est.decommit(0, 60);
        est.commit(1, 60);
        assert_eq!(est.projected(&[0, 0]), vec![40, 100]);
        assert_eq!(est.max_load(), 100);
        // Over-decommit saturates at zero instead of wrapping.
        est.decommit(0, 10_000);
        assert_eq!(est.projected(&[0, 0])[0], 0);
        // Out-of-range decommits are ignored rather than panicking.
        est.decommit(9, 1);
    }

    #[test]
    fn stagger_offset_moves_gpu_host_cores_too() {
        // Regression test: the stagger offset used to apply only to CPU
        // slots, so every concurrent stage's GPU instances hosted their
        // CPU-side work on the same first cores of the interleaved list.
        let topology = ServerTopology::paper_server();
        let targets = [DeviceTarget::cpu(2), DeviceTarget::gpu(2)];
        let base = Router::plan_consumers_offset(&targets, &topology, 0).unwrap();
        let shifted = Router::plan_consumers_offset(&targets, &topology, 4).unwrap();
        for (b, s) in base.iter().zip(&shifted) {
            assert_ne!(
                b.affinity.cpu_core, s.affinity.cpu_core,
                "offset must move the host core of every slot kind, got {b:?} vs {s:?}"
            );
        }
        // GPU pinning itself is unaffected by the stagger.
        assert_eq!(base[2].affinity.gpu, shifted[2].affinity.gpu);
        assert_eq!(base[3].affinity.gpu, shifted[3].affinity.gpu);
    }

    #[test]
    fn plan_consumers_rejects_oversubscription() {
        let topology = ServerTopology::paper_server();
        assert!(Router::plan_consumers(&[DeviceTarget::gpu(3)], &topology).is_err());
        assert!(Router::plan_consumers(&[DeviceTarget::cpu(25)], &topology).is_err());
    }

    #[test]
    fn consumer_devices_match_slot_kinds() {
        let topology = ServerTopology::paper_server();
        let slots =
            Router::plan_consumers(&[DeviceTarget::cpu(2), DeviceTarget::gpu(1)], &topology)
                .unwrap();
        let router = Router::new(RouterPolicy::LeastLoaded, &slots).unwrap();
        let devices = router.consumer_devices();
        assert_eq!(devices.len(), 3);
        assert!(devices.iter().all(Option::is_some));
        let gpu_dev = devices[2].unwrap();
        assert!(topology.device(gpu_dev).unwrap().is_gpu());
    }
}
