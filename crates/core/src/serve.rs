//! Deterministic multi-query fairness timeline.
//!
//! The serving layer executes query sessions *functionally* on host threads
//! (rows are exact), but — like everything else in this reproduction —
//! accounts shared-server *time* on a model, not on wall clocks. This module
//! is that model: a discrete-event replay of the admitted sessions as fluid
//! flows over the server's device capacities, under weighted max-min
//! fairness. Because the replay is a pure function of the session specs
//! (isolated demand, per-kind busy time, priority, admission footprint), the
//! served latencies and the makespan are bit-reproducible regardless of how
//! the worker pool's threads happened to interleave on the wall clock.
//!
//! The model, per session `q` and device kind `k`:
//!
//! * **demand** `d_q` — the query's simulated completion time when executed
//!   in isolation (its critical path; measured, not estimated);
//! * **utilization** `u_{q,k} = busy_{q,k} / d_q` — device-seconds of kind
//!   `k` the query consumes per second of its own progress. Each device's
//!   busy time is at most the completion time, so `u_{q,k}` never exceeds
//!   the kind's device count: a session running alone always progresses at
//!   full rate;
//! * **rate** `r_q ∈ (0, 1]` — the session's progress per unit of virtual
//!   time. The cap at 1 is the critical path: co-running queries can only
//!   slow each other down, never accelerate one query beyond its isolated
//!   time;
//! * **capacity** `C_k` — devices of kind `k`; feasibility requires
//!   `Σ_q r_q · u_{q,k} ≤ C_k` at every instant.
//!
//! Rates are the weighted water-filling solution `r_q = min(1, θ · w_q)`
//! with `θ` maximal subject to every capacity constraint — work-conserving
//! weighted max-min fairness. Weights come from
//! [`CostModel::fairness_weight`]: the priority class's base weight scaled
//! by the estimated remaining cost, so progress balances across the running
//! set (a nearly-finished query cedes bandwidth to one with more left)
//! while priority classes keep their configured ratios.
//!
//! Admission mirrors the serving layer's staging tokens: a session becomes
//! runnable only when its per-node footprint fits in the remaining admission
//! budget and a worker slot is free, in strict priority order with FIFO
//! inside each class and no bypass — so the replay's admission sequence is
//! exactly the `QueryServer`'s.

use crate::cost::CostModel;
use hetex_common::{HetError, Priority, Result};
use hetex_topology::SimTime;
use std::collections::VecDeque;

/// One query session submitted to the fair timeline, in submission order.
#[derive(Debug, Clone)]
pub struct ServeSession {
    /// Simulated completion time of the query executed in isolation.
    pub isolated: SimTime,
    /// Busy nanoseconds per device kind (slot-indexed, same slots as the
    /// timeline's capacities) of the isolated execution.
    pub busy_ns: Vec<u64>,
    /// Priority class (admission order and base fairness weight).
    pub priority: Priority,
    /// Admission-token size: the session's estimated peak staging footprint,
    /// held on every node for its whole run.
    pub footprint_bytes: u64,
}

/// When one session was admitted and finished on the virtual timeline.
#[derive(Debug, Clone, Copy)]
pub struct SessionSchedule {
    /// Virtual time the session's admission token was granted.
    pub admitted_at: SimTime,
    /// Virtual time the session completed.
    pub finished_at: SimTime,
}

impl SessionSchedule {
    /// Served latency: submission (all sessions arrive at zero) to finish.
    pub fn latency(&self) -> SimTime {
        self.finished_at
    }
}

/// The resolved timeline of a served batch.
#[derive(Debug, Clone)]
pub struct ServeSchedule {
    /// Per-session schedule, in submission order.
    pub sessions: Vec<SessionSchedule>,
    /// Completion time of the last session.
    pub makespan: SimTime,
    /// Largest admission bytes ever held concurrently (identical on every
    /// node: tokens are acquired on all nodes together). Never exceeds the
    /// timeline's budget — asserted during replay.
    pub peak_admitted_bytes: u64,
}

/// Remaining work below this many nanoseconds counts as finished (absorbs
/// floating-point drift of the fluid integration).
const FINISH_EPS_NS: f64 = 1e-3;

/// The deterministic weighted-fair fluid scheduler.
#[derive(Debug, Clone)]
pub struct FairTimeline {
    /// Device count per kind slot.
    capacities: Vec<f64>,
    /// Per-node admission byte budget.
    admission_budget: u64,
    /// Worker-pool bound: sessions running concurrently, at most.
    max_concurrent: usize,
    /// Weight policy (priority × estimated remaining cost).
    cost: CostModel,
}

/// One running session's fluid state.
struct Run {
    session: usize,
    remaining_ns: f64,
    /// `u_{q,k}`: device-seconds of kind `k` per second of progress.
    utilization: Vec<f64>,
    priority: Priority,
    footprint: u64,
}

impl FairTimeline {
    /// A timeline over `capacities` devices per kind slot, a per-node
    /// `admission_budget`, at most `max_concurrent` running sessions, and
    /// `cost` as the fairness-weight policy.
    pub fn new(
        capacities: Vec<f64>,
        admission_budget: u64,
        max_concurrent: usize,
        cost: CostModel,
    ) -> Self {
        Self { capacities, admission_budget, max_concurrent: max_concurrent.max(1), cost }
    }

    /// Replay `sessions` (in submission order, all arriving at virtual time
    /// zero) and resolve every admission and finish instant.
    pub fn replay(&self, sessions: &[ServeSession]) -> Result<ServeSchedule> {
        for (idx, s) in sessions.iter().enumerate() {
            if s.footprint_bytes > self.admission_budget {
                return Err(HetError::Config(format!(
                    "session {idx} footprint ({} bytes) exceeds the admission budget \
                     ({} bytes): it can never be admitted",
                    s.footprint_bytes, self.admission_budget
                )));
            }
            if s.busy_ns.len() != self.capacities.len() {
                return Err(HetError::Config(format!(
                    "session {idx} reports {} device kinds, timeline has {}",
                    s.busy_ns.len(),
                    self.capacities.len()
                )));
            }
        }

        // Admission order: strict priority, FIFO inside each class. The sort
        // is stable, so submission order is preserved within a class.
        let mut order: Vec<usize> = (0..sessions.len()).collect();
        order.sort_by_key(|&i| sessions[i].priority.rank());
        let mut waiting: VecDeque<usize> = order.into();

        let mut schedule: Vec<Option<SessionSchedule>> = vec![None; sessions.len()];
        let mut running: Vec<Run> = Vec::new();
        let mut now_ns = 0.0f64;
        let mut admitted_bytes = 0u64;
        let mut peak_admitted = 0u64;

        loop {
            // Admit from the head only — no bypass: a class-mate behind a
            // too-big head waits with it, which is what makes the admission
            // order deterministic and starvation-free within a class.
            while let Some(&head) = waiting.front() {
                let s = &sessions[head];
                if running.len() >= self.max_concurrent
                    || admitted_bytes + s.footprint_bytes > self.admission_budget
                {
                    break;
                }
                waiting.pop_front();
                admitted_bytes += s.footprint_bytes;
                peak_admitted = peak_admitted.max(admitted_bytes);
                debug_assert!(admitted_bytes <= self.admission_budget);
                let isolated_ns = s.isolated.as_nanos().max(1) as f64;
                schedule[head] = Some(SessionSchedule {
                    admitted_at: SimTime::from_nanos(now_ns.round() as u64),
                    finished_at: SimTime::ZERO,
                });
                running.push(Run {
                    session: head,
                    remaining_ns: isolated_ns,
                    utilization: s.busy_ns.iter().map(|&b| b as f64 / isolated_ns).collect(),
                    priority: s.priority,
                    footprint: s.footprint_bytes,
                });
            }
            if running.is_empty() {
                break;
            }

            let rates = self.fair_rates(&running);

            // Next event: the earliest finish under the current rates.
            let mut dt = f64::INFINITY;
            for (run, &rate) in running.iter().zip(&rates) {
                if rate > 0.0 {
                    dt = dt.min(run.remaining_ns / rate);
                }
            }
            debug_assert!(dt.is_finite(), "at least one running session must progress");
            now_ns += dt;
            for (run, &rate) in running.iter_mut().zip(&rates) {
                run.remaining_ns = (run.remaining_ns - rate * dt).max(0.0);
            }
            running.retain(|run| {
                if run.remaining_ns > FINISH_EPS_NS {
                    return true;
                }
                admitted_bytes -= run.footprint;
                let entry = schedule[run.session].as_mut().expect("running session was admitted");
                entry.finished_at = SimTime::from_nanos(now_ns.round() as u64);
                false
            });
        }

        let sessions: Vec<SessionSchedule> = schedule
            .into_iter()
            .map(|s| s.expect("every session is eventually admitted"))
            .collect();
        let makespan = sessions.iter().map(|s| s.finished_at).fold(SimTime::ZERO, SimTime::max);
        Ok(ServeSchedule { sessions, makespan, peak_admitted_bytes: peak_admitted })
    }

    /// Weighted water-filling: the largest `θ` with `r_q = min(1, θ·w_q)`
    /// feasible under every per-kind capacity constraint. Monotone in `θ`,
    /// so a fixed-iteration bisection resolves it deterministically.
    fn fair_rates(&self, running: &[Run]) -> Vec<f64> {
        let weights: Vec<f64> = running
            .iter()
            .map(|run| {
                self.cost
                    .fairness_weight(run.priority, run.remaining_ns.round() as u64)
                    .max(f64::MIN_POSITIVE)
            })
            .collect();
        let feasible = |theta: f64| -> bool {
            for (k, &cap) in self.capacities.iter().enumerate() {
                let load: f64 = running
                    .iter()
                    .zip(&weights)
                    .map(|(run, &w)| (theta * w).min(1.0) * run.utilization[k])
                    .sum();
                // Tiny tolerance: a single session saturating a kind must
                // still run at full rate.
                if load > cap * (1.0 + 1e-9) {
                    return false;
                }
            }
            true
        };
        // θ_hi caps every rate at 1; if that is feasible the schedule is not
        // capacity-bound and everyone runs at full rate.
        let theta_hi = weights.iter().fold(0.0f64, |acc, &w| acc.max(1.0 / w));
        if feasible(theta_hi) {
            return vec![1.0; running.len()];
        }
        let (mut lo, mut hi) = (0.0f64, theta_hi);
        for _ in 0..64 {
            let mid = 0.5 * (lo + hi);
            if feasible(mid) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        weights.iter().map(|&w| (lo * w).min(1.0)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost() -> CostModel {
        CostModel::default()
    }

    fn session(ms: u64, busy_ms: &[u64], priority: Priority) -> ServeSession {
        ServeSession {
            isolated: SimTime::from_millis(ms),
            busy_ns: busy_ms.iter().map(|&b| SimTime::from_millis(b).as_nanos()).collect(),
            priority,
            footprint_bytes: 64,
        }
    }

    #[test]
    fn lone_session_runs_at_its_isolated_time() {
        let timeline = FairTimeline::new(vec![24.0, 2.0], 1024, 8, cost());
        // Huge spare capacity — but the critical-path cap keeps the finish
        // exactly at the isolated time, never earlier.
        let schedule = timeline.replay(&[session(100, &[400, 50], Priority::Normal)]).unwrap();
        assert_eq!(schedule.sessions[0].admitted_at, SimTime::ZERO);
        assert_eq!(schedule.sessions[0].finished_at, SimTime::from_millis(100));
        assert_eq!(schedule.makespan, SimTime::from_millis(100));
        assert_eq!(schedule.peak_admitted_bytes, 64);
    }

    #[test]
    fn uncontended_sessions_overlap_fully() {
        // Four identical sessions, each using 4 of 24 cpu-device-seconds per
        // second: total load 16 < 24, so all four finish at the isolated
        // time — aggregate throughput 4x serial.
        let timeline = FairTimeline::new(vec![24.0], 1 << 20, 8, cost());
        let sessions: Vec<_> = (0..4).map(|_| session(100, &[400], Priority::Normal)).collect();
        let schedule = timeline.replay(&sessions).unwrap();
        for s in &schedule.sessions {
            assert_eq!(s.finished_at, SimTime::from_millis(100));
        }
        assert_eq!(schedule.makespan, SimTime::from_millis(100));
    }

    #[test]
    fn capacity_bound_sessions_share_fairly_and_finish_together() {
        // Two identical sessions each saturating the single-device kind:
        // weighted fair share halves both rates, both finish at 2x isolated
        // — exactly the serial total, the fluid model is work-conserving.
        let timeline = FairTimeline::new(vec![1.0], 1 << 20, 8, cost());
        let sessions: Vec<_> = (0..2).map(|_| session(100, &[100], Priority::Normal)).collect();
        let schedule = timeline.replay(&sessions).unwrap();
        let finish = SimTime::from_millis(200);
        for s in &schedule.sessions {
            let got = s.finished_at.as_nanos() as i64;
            assert!((got - finish.as_nanos() as i64).abs() < 1_000, "finish {got}");
        }
    }

    #[test]
    fn admission_budget_serializes_oversized_pairs() {
        // Budget fits one footprint at a time: the second session is
        // admitted only when the first finishes.
        let timeline = FairTimeline::new(vec![8.0], 100, 8, cost());
        let mut sessions: Vec<_> = (0..2).map(|_| session(50, &[100], Priority::Normal)).collect();
        for s in &mut sessions {
            s.footprint_bytes = 60;
        }
        let schedule = timeline.replay(&sessions).unwrap();
        assert_eq!(schedule.sessions[0].admitted_at, SimTime::ZERO);
        assert_eq!(schedule.sessions[0].finished_at, SimTime::from_millis(50));
        assert_eq!(schedule.sessions[1].admitted_at, SimTime::from_millis(50));
        assert_eq!(schedule.sessions[1].finished_at, SimTime::from_millis(100));
        assert_eq!(schedule.peak_admitted_bytes, 60);
        assert!(schedule.peak_admitted_bytes <= 100);
    }

    #[test]
    fn worker_pool_bounds_virtual_concurrency() {
        let timeline = FairTimeline::new(vec![64.0], 1 << 20, 1, cost());
        let sessions: Vec<_> = (0..3).map(|_| session(10, &[10], Priority::Normal)).collect();
        let schedule = timeline.replay(&sessions).unwrap();
        // One worker: pure serial, despite abundant capacity and budget.
        assert_eq!(schedule.sessions[2].admitted_at, SimTime::from_millis(20));
        assert_eq!(schedule.makespan, SimTime::from_millis(30));
    }

    #[test]
    fn high_priority_is_admitted_first_without_class_bypass() {
        // Budget admits one at a time. Submission order: low, low, high.
        // Admission order must be: high, then the two lows in FIFO order.
        let timeline = FairTimeline::new(vec![8.0], 100, 8, cost());
        let mut sessions = vec![
            session(10, &[10], Priority::Low),
            session(10, &[10], Priority::Low),
            session(10, &[10], Priority::High),
        ];
        for s in &mut sessions {
            s.footprint_bytes = 100;
        }
        let schedule = timeline.replay(&sessions).unwrap();
        assert_eq!(schedule.sessions[2].admitted_at, SimTime::ZERO);
        assert_eq!(schedule.sessions[0].admitted_at, SimTime::from_millis(10));
        assert_eq!(schedule.sessions[1].admitted_at, SimTime::from_millis(20));
    }

    #[test]
    fn remaining_cost_weighting_lets_the_longer_query_catch_up() {
        // Same priority, one query twice the demand, capacity bound: the
        // remaining-cost weighting gives the longer query the larger share,
        // so both finish at the work-conserving total (300ms), not one
        // after the other.
        let timeline = FairTimeline::new(vec![1.0], 1 << 20, 8, cost());
        let sessions =
            vec![session(100, &[100], Priority::Normal), session(200, &[200], Priority::Normal)];
        let schedule = timeline.replay(&sessions).unwrap();
        let makespan = schedule.makespan.as_nanos() as f64;
        assert!(
            (makespan - 3.0e8).abs() < 1e6,
            "work-conserving makespan ~300ms, got {makespan}ns"
        );
        // Completion balancing: remaining-cost weighting splits the rates
        // 1:2, so both queries finish together at the makespan — neither is
        // starved behind the other.
        let gap = schedule.sessions[1].finished_at.as_nanos() as i64
            - schedule.sessions[0].finished_at.as_nanos() as i64;
        assert!(gap.abs() < 1_000, "both finish together, gap {gap}ns");
    }

    #[test]
    fn oversized_footprint_is_rejected() {
        let timeline = FairTimeline::new(vec![1.0], 100, 8, cost());
        let mut s = session(10, &[10], Priority::Normal);
        s.footprint_bytes = 101;
        let err = timeline.replay(&[s]).unwrap_err();
        assert_eq!(err.category(), "config");
    }

    #[test]
    fn mismatched_kind_count_is_rejected() {
        let timeline = FairTimeline::new(vec![1.0, 1.0], 1024, 8, cost());
        let err = timeline.replay(&[session(10, &[10], Priority::Normal)]).unwrap_err();
        assert_eq!(err.category(), "config");
    }
}
