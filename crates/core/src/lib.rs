//! # hetex-core
//!
//! The paper's primary contribution: the **HetExchange** operator family and
//! the machinery around it.
//!
//! * [`plan`] — the device-agnostic physical plan ([`plan::RelNode`]) and the
//!   heterogeneity-aware plan ([`plan::HetNode`]) it is rewritten into, with
//!   the four HetExchange operators as explicit plan nodes.
//! * [`traits`] — the four physical traits of §3.3 (target device, degree of
//!   parallelism, data locality, packing) and their derivation over a plan;
//!   each HetExchange operator is a *converter* that changes exactly one trait.
//! * [`parallelizer`] — the plan rewriter that inserts routers, device
//!   crossings, mem-moves and pack/unpack operators into a sequential plan,
//!   reproducing the step-by-step construction of Figure 1 for CPU-only,
//!   GPU-only and hybrid configurations.
//! * [`cost`] — the unified routing/admission/steal cost model
//!   ([`cost::CostModel`]): every estimation term the executor's router
//!   path, queue-admission path and steal path consult, behind one
//!   calibrated interface with per-term `EngineConfig` toggles.
//! * [`router`] — the control-flow router: policies (round-robin,
//!   least-loaded, hash, union, broadcast-target), degree-of-parallelism
//!   control and affinity assignment. Routes block *handles*, never data.
//! * [`device_crossing`] — cpu2gpu and gpu2cpu, including gpu2cpu's two-part
//!   implementation around an asynchronous queue.
//! * [`mem_move`] — the data-flow operator that schedules asynchronous DMA
//!   transfers (and broadcasts) so consumers only ever see local data.
//! * [`pack`] — pack/unpack/hash-pack utilities that convert between
//!   block-at-a-time movement and tuple-at-a-time execution.
//! * [`queue`] — the asynchronous block-handle queues used by routers and by
//!   gpu2cpu.
//! * [`reopt`] — feedback-driven plan re-optimization: a plan-fingerprint
//!   keyed [`reopt::FeedbackCache`] of measurements distilled from executed
//!   queries, and a small placement/DOP plan-space search costed by the
//!   calibrated [`cost::CostModel`], so a repeated query's second run is
//!   planned from its first run's observed behaviour.
//! * [`serve`] — the deterministic multi-query fairness timeline
//!   ([`serve::FairTimeline`]): admitted sessions replayed as fluid flows
//!   over the device capacities under weighted max-min fairness, the model
//!   behind the serving layer's latencies and makespan.

pub mod codegen;
pub mod cost;
pub mod device_crossing;
pub mod mem_move;
pub mod pack;
pub mod parallelizer;
pub mod plan;
pub mod queue;
pub mod reopt;
pub mod router;
pub mod serve;
pub mod traits;

pub use codegen::{compile, MemMoveMode, Stage, StageGraph, StageSource, StageWiring};
pub use cost::{CostModel, DemandSplitter, SlowdownObserver, StealQuery};
pub use device_crossing::{Cpu2Gpu, Gpu2Cpu};
pub use mem_move::MemMove;
pub use pack::{Packer, Unpacker};
pub use parallelizer::parallelize;
pub use plan::{DeviceTarget, HetNode, RelNode, RouterPolicy};
pub use queue::BlockQueue;
pub use reopt::{
    plan_fingerprint, Candidate, CandidateCost, FeedbackCache, PlanFeedback, ReoptDecision,
    StageObservation,
};
pub use router::Router;
pub use serve::{FairTimeline, ServeSchedule, ServeSession, SessionSchedule};
pub use traits::PlanTraits;
