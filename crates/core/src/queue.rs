//! Asynchronous block-handle queues.
//!
//! Routers and the gpu2cpu operator connect producer and consumer pipeline
//! instances through asynchronous queues of block *handles* (§3.1). The queue
//! is unbounded (the paper's staging memory is pre-allocated by the block
//! managers; back-pressure is handled there, not in the queue), supports many
//! producers, and terminates the consumer cleanly once every registered
//! producer has finished.

use crossbeam::channel::{unbounded, Receiver, Sender};
use hetex_common::{BlockHandle, HetError, Result};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

enum Message {
    Block(BlockHandle),
    ProducerDone,
}

/// A multi-producer, single-consumer queue of block handles.
#[derive(Clone)]
pub struct BlockQueue {
    sender: Sender<Message>,
    receiver: Receiver<Message>,
    producers: Arc<AtomicUsize>,
    finished: Arc<AtomicUsize>,
}

impl std::fmt::Debug for BlockQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockQueue")
            .field("producers", &self.producers.load(Ordering::Relaxed))
            .field("finished", &self.finished.load(Ordering::Relaxed))
            .field("pending", &self.receiver.len())
            .finish()
    }
}

impl BlockQueue {
    /// A queue expecting `producers` producers.
    pub fn new(producers: usize) -> Self {
        let (sender, receiver) = unbounded();
        Self {
            sender,
            receiver,
            producers: Arc::new(AtomicUsize::new(producers)),
            finished: Arc::new(AtomicUsize::new(0)),
        }
    }

    /// Register one more producer (used when a router instantiates additional
    /// pipeline instances after the queue was created).
    pub fn add_producer(&self) {
        self.producers.fetch_add(1, Ordering::SeqCst);
    }

    /// Push a block handle into the queue.
    pub fn push(&self, handle: BlockHandle) -> Result<()> {
        self.sender
            .send(Message::Block(handle))
            .map_err(|_| HetError::Cancelled("block queue closed".into()))
    }

    /// Signal that one producer has no more blocks to push.
    pub fn producer_done(&self) -> Result<()> {
        self.sender
            .send(Message::ProducerDone)
            .map_err(|_| HetError::Cancelled("block queue closed".into()))
    }

    /// Pop the next block handle, or `None` once every producer finished and
    /// the queue drained.
    pub fn pop(&self) -> Option<BlockHandle> {
        loop {
            if self.finished.load(Ordering::SeqCst) >= self.producers.load(Ordering::SeqCst)
                && self.receiver.is_empty()
            {
                return None;
            }
            match self.receiver.recv() {
                Ok(Message::Block(handle)) => return Some(handle),
                Ok(Message::ProducerDone) => {
                    self.finished.fetch_add(1, Ordering::SeqCst);
                }
                Err(_) => return None,
            }
        }
    }

    /// Drain everything currently reachable into a vector (used by the
    /// stage-at-a-time executor, which runs producers to completion before
    /// consumers start pulling).
    pub fn drain(&self) -> Vec<BlockHandle> {
        let mut out = Vec::new();
        while let Some(handle) = self.pop() {
            out.push(handle);
        }
        out
    }

    /// Number of messages currently buffered (blocks plus completion markers).
    pub fn len(&self) -> usize {
        self.receiver.len()
    }

    /// True if no messages are buffered.
    pub fn is_empty(&self) -> bool {
        self.receiver.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetex_common::{Block, BlockId, BlockMeta, ColumnData, MemoryNodeId};
    use std::thread;

    fn handle(id: usize) -> BlockHandle {
        let block = Block::new(vec![ColumnData::Int64(vec![id as i64])], 1).unwrap();
        BlockHandle::new(block, BlockMeta::new(BlockId::new(id), MemoryNodeId::new(0)))
    }

    #[test]
    fn push_pop_round_trip() {
        let q = BlockQueue::new(1);
        q.push(handle(1)).unwrap();
        q.push(handle(2)).unwrap();
        q.producer_done().unwrap();
        assert_eq!(q.pop().unwrap().meta().id, BlockId::new(1));
        assert_eq!(q.pop().unwrap().meta().id, BlockId::new(2));
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn consumer_terminates_after_all_producers_finish() {
        let q = BlockQueue::new(2);
        q.push(handle(1)).unwrap();
        q.producer_done().unwrap();
        // Only one of two producers is done: a block is still delivered.
        assert!(q.pop().is_some());
        q.producer_done().unwrap();
        assert!(q.pop().is_none());
    }

    #[test]
    fn multiple_producer_threads_deliver_everything() {
        let q = BlockQueue::new(4);
        let mut handles = Vec::new();
        for t in 0..4 {
            let q = q.clone();
            handles.push(thread::spawn(move || {
                for i in 0..100 {
                    q.push(handle(t * 1000 + i)).unwrap();
                }
                q.producer_done().unwrap();
            }));
        }
        let consumer = {
            let q = q.clone();
            thread::spawn(move || q.drain().len())
        };
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(consumer.join().unwrap(), 400);
    }

    #[test]
    fn drain_collects_all_pending_blocks() {
        let q = BlockQueue::new(1);
        for i in 0..10 {
            q.push(handle(i)).unwrap();
        }
        q.producer_done().unwrap();
        assert_eq!(q.drain().len(), 10);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn add_producer_extends_termination_condition() {
        let q = BlockQueue::new(0);
        q.add_producer();
        q.push(handle(1)).unwrap();
        q.producer_done().unwrap();
        assert!(q.pop().is_some());
        assert!(q.pop().is_none());
    }
}
