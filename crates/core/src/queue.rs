//! Asynchronous block-handle queues.
//!
//! Routers and the gpu2cpu operator connect producer and consumer pipeline
//! instances through asynchronous queues of block *handles* (§3.1). A queue
//! supports many producers and terminates the consumer cleanly once every
//! registered producer has finished. Two variants exist:
//!
//! * [`BlockQueue::new`] — unbounded (the paper's staging memory is
//!   pre-allocated by the block managers, so back-pressure can be handled
//!   there);
//! * [`BlockQueue::bounded`] — bounded to a fixed number of buffered blocks,
//!   giving the pipelined executor explicit back-pressure: a producer blocks
//!   in [`BlockQueue::push`] until the consumer drains a slot, modeling a
//!   finite staging arena.
//!
//! Termination is cooperative: producers register (`new(n)` /
//! [`BlockQueue::add_producer`] / [`BlockQueue::register_producer`]) and
//! signal completion ([`BlockQueue::producer_done`]); `pop` returns `None`
//! once every producer finished and the queue drained. Two safety valves stop
//! a consumer from deadlocking when a producer dies abnormally:
//!
//! * [`BlockQueue::close`] poisons the queue — every pending and future `pop`
//!   returns `None` and every future `push` fails — and is called by the
//!   executor when a worker errors out, cascading shutdown upstream;
//! * [`ProducerGuard`] (from [`BlockQueue::register_producer`]) signals
//!   `producer_done` from its `Drop` impl, so a producer that panics before
//!   finishing still releases its consumer during unwinding.

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use hetex_common::{BlockHandle, HetError, MemoryNodeId, Result};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::Duration;

#[derive(Debug)]
enum Message {
    Block(BlockHandle),
    ProducerDone,
    /// Wake-up with no payload, used by `close()` to rouse a blocked consumer.
    Nudge,
}

/// Byte-quota accounting of one queue: how many staged bytes are outstanding
/// (admitted but not yet dropped by the consumer) against the queue's share
/// of its node's staging arena. Shared by all clones of the queue.
#[derive(Debug)]
struct QueueStaging {
    /// The queue's byte share of its node's staging budget.
    quota: u64,
    /// Outstanding admitted bytes.
    outstanding: StdMutex<u64>,
    /// Signalled whenever outstanding bytes shrink (or the queue closes).
    drained_cv: Condvar,
}

/// RAII receipt of one byte admission into a [`BlockQueue`]; dropping it
/// returns the bytes to the queue's quota and wakes parked producers. The
/// executor bundles this with the arena [`BlockLease`] into the handle's
/// staging token, so consumer-side drops release both at once.
#[derive(Debug)]
pub struct QueueSlot {
    bytes: u64,
    staging: Arc<QueueStaging>,
}

impl Drop for QueueSlot {
    fn drop(&mut self) {
        let mut outstanding = self.staging.outstanding.lock().unwrap_or_else(|e| e.into_inner());
        *outstanding = outstanding.saturating_sub(self.bytes);
        drop(outstanding);
        self.staging.drained_cv.notify_all();
    }
}

/// A multi-producer, single-consumer queue of block handles.
#[derive(Clone)]
pub struct BlockQueue {
    sender: Sender<Message>,
    receiver: Receiver<Message>,
    producers: Arc<AtomicUsize>,
    finished: Arc<AtomicUsize>,
    closed: Arc<AtomicBool>,
    /// Byte-quota admission state; `None` leaves admission ungoverned.
    staging: Option<Arc<QueueStaging>>,
    /// Memory node this queue (and its buffered handles) is placed on — the
    /// consumer's local node under the NUMA-aware placement policy.
    node: Option<MemoryNodeId>,
}

impl std::fmt::Debug for BlockQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockQueue")
            .field("producers", &self.producers.load(Ordering::Relaxed))
            .field("finished", &self.finished.load(Ordering::Relaxed))
            .field("pending", &self.receiver.len())
            .field("closed", &self.closed.load(Ordering::Relaxed))
            .finish()
    }
}

impl BlockQueue {
    /// An unbounded queue expecting `producers` producers.
    pub fn new(producers: usize) -> Self {
        let (sender, receiver) = unbounded();
        Self::from_channel(sender, receiver, producers)
    }

    /// A bounded queue expecting `producers` producers: at most `capacity`
    /// messages buffer before `push` blocks (back-pressure).
    pub fn bounded(producers: usize, capacity: usize) -> Self {
        // One extra slot keeps the completion marker from blocking a producer
        // whose data already filled the queue.
        let (sender, receiver) = bounded(capacity.max(1) + 1);
        Self::from_channel(sender, receiver, producers)
    }

    fn from_channel(
        sender: Sender<Message>,
        receiver: Receiver<Message>,
        producers: usize,
    ) -> Self {
        Self {
            sender,
            receiver,
            producers: Arc::new(AtomicUsize::new(producers)),
            finished: Arc::new(AtomicUsize::new(0)),
            closed: Arc::new(AtomicBool::new(false)),
            staging: None,
            node: None,
        }
    }

    /// Govern admission by a byte quota: [`Self::admit`] parks producers once
    /// `quota` bytes are outstanding. Call before cloning the queue (the
    /// state is shared by clones made afterwards).
    pub fn with_byte_quota(mut self, quota: u64) -> Self {
        self.staging = Some(Arc::new(QueueStaging {
            quota: quota.max(1),
            outstanding: StdMutex::new(0),
            drained_cv: Condvar::new(),
        }));
        self
    }

    /// Record the memory node this queue is placed on (the consumer's local
    /// node). Call before cloning the queue.
    pub fn on_node(mut self, node: MemoryNodeId) -> Self {
        self.node = Some(node);
        self
    }

    /// The memory node this queue is placed on, if recorded.
    pub fn node(&self) -> Option<MemoryNodeId> {
        self.node
    }

    /// Bytes currently admitted and not yet released by the consumer.
    pub fn outstanding_bytes(&self) -> u64 {
        self.staging
            .as_ref()
            .map(|s| *s.outstanding.lock().unwrap_or_else(|e| e.into_inner()))
            .unwrap_or(0)
    }

    /// Admit `bytes` against the queue's byte quota, parking while the quota
    /// is exhausted. Returns the RAII receipt to bundle into the handle's
    /// staging token, or `None` when the queue is ungoverned (no quota
    /// configured, or a zero-byte block).
    ///
    /// Like [`Self::push`] on a full bounded queue, the wait has no deadline
    /// of its own — back-pressure may legitimately last as long as an
    /// upstream build runs — but it periodically rechecks the closed flag, so
    /// `close()` releases parked producers during shutdown instead of
    /// deadlocking them. (The arena acquisition that follows admission keeps
    /// a timeout and remains the backstop against genuine wedges.)
    ///
    /// An *empty* account always admits one block even if it exceeds the
    /// quota — a block larger than the quota must still be able to flow, one
    /// at a time, or a tiny budget would wedge the pipeline instead of merely
    /// slowing it.
    pub fn admit(&self, bytes: u64) -> Result<Option<QueueSlot>> {
        let Some(staging) = &self.staging else { return Ok(None) };
        if bytes == 0 {
            return Ok(None);
        }
        let mut outstanding = staging.outstanding.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if self.closed.load(Ordering::SeqCst) {
                return Err(HetError::Cancelled("block queue closed".into()));
            }
            if *outstanding == 0 || *outstanding + bytes <= staging.quota {
                *outstanding += bytes;
                return Ok(Some(QueueSlot { bytes, staging: Arc::clone(staging) }));
            }
            let (guard, _) = staging
                .drained_cv
                .wait_timeout(outstanding, Duration::from_millis(50))
                .unwrap_or_else(|e| e.into_inner());
            outstanding = guard;
        }
    }

    /// Register one more producer (used when a router instantiates additional
    /// pipeline instances after the queue was created).
    pub fn add_producer(&self) {
        self.producers.fetch_add(1, Ordering::SeqCst);
    }

    /// Register a producer and return an RAII guard for it: the guard pushes
    /// on the producer's behalf and signals `producer_done` when dropped (or
    /// explicitly via [`ProducerGuard::done`]). Because the signal lives in
    /// `Drop`, a producer that panics mid-stream still terminates its
    /// consumer instead of deadlocking it.
    pub fn register_producer(&self) -> ProducerGuard {
        self.add_producer();
        ProducerGuard { queue: self.clone(), finished: false }
    }

    /// Push a block handle into the queue, blocking on a full bounded queue.
    /// Fails if the queue was closed — including while blocked on a full
    /// queue whose consumer died: the wait periodically rechecks the closed
    /// flag, so `close()` releases stuck producers instead of deadlocking
    /// them.
    pub fn push(&self, handle: BlockHandle) -> Result<()> {
        let mut message = Message::Block(handle);
        loop {
            if self.closed.load(Ordering::SeqCst) {
                return Err(HetError::Cancelled("block queue closed".into()));
            }
            match self.sender.send_timeout(message, std::time::Duration::from_millis(10)) {
                Ok(()) => return Ok(()),
                Err(crossbeam::channel::SendTimeoutError::Timeout(m)) => message = m,
                Err(crossbeam::channel::SendTimeoutError::Disconnected(_)) => {
                    return Err(HetError::Cancelled("block queue closed".into()));
                }
            }
        }
    }

    /// Signal that one producer has no more blocks to push. Like
    /// [`Self::push`], the wait on a full bounded queue periodically rechecks
    /// the closed flag so a completing producer cannot deadlock against a
    /// consumer that died.
    pub fn producer_done(&self) -> Result<()> {
        let mut message = Message::ProducerDone;
        loop {
            if self.closed.load(Ordering::SeqCst) {
                // A closed queue no longer counts completions; not an error
                // so unwinding producers can call this unconditionally.
                return Ok(());
            }
            match self.sender.send_timeout(message, std::time::Duration::from_millis(10)) {
                Ok(()) => return Ok(()),
                Err(crossbeam::channel::SendTimeoutError::Timeout(m)) => message = m,
                Err(crossbeam::channel::SendTimeoutError::Disconnected(_)) => {
                    return Err(HetError::Cancelled("block queue closed".into()));
                }
            }
        }
    }

    /// Poison the queue: every pending and future [`Self::pop`] returns
    /// `None`, and every future [`Self::push`] fails. Used to cascade
    /// shutdown when a worker dies abnormally.
    ///
    /// Handles still buffered in the queue are dropped here, so the staging
    /// charges they carry are released immediately — a closed queue must not
    /// keep arena bytes leased (and producers parked on them) until the
    /// channel itself is torn down.
    pub fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        // Drop everything already buffered (releasing staging leases), then
        // wake a consumer blocked in `recv`. If the buffer is full the
        // consumer is not blocked (it has data to pop and will observe the
        // flag at its next loop iteration), so a failed try-send is fine.
        while self.receiver.try_recv().is_ok() {}
        let _ = self.sender.try_send(Message::Nudge);
        // Wake producers parked in `admit` so they observe the closed flag.
        if let Some(staging) = &self.staging {
            staging.drained_cv.notify_all();
        }
    }

    /// True once the queue has been closed.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }

    /// Pop the next block handle, or `None` once every producer finished and
    /// the queue drained (or the queue was closed).
    pub fn pop(&self) -> Option<BlockHandle> {
        loop {
            if self.closed.load(Ordering::SeqCst) {
                return None;
            }
            if self.finished.load(Ordering::SeqCst) >= self.producers.load(Ordering::SeqCst)
                && self.receiver.is_empty()
            {
                return None;
            }
            match self.receiver.recv() {
                Ok(Message::Block(handle)) => {
                    if self.closed.load(Ordering::SeqCst) {
                        return None;
                    }
                    return Some(handle);
                }
                Ok(Message::ProducerDone) => {
                    self.finished.fetch_add(1, Ordering::SeqCst);
                }
                Ok(Message::Nudge) | Err(_) => {}
            }
        }
    }

    /// Drain everything currently reachable into a vector (used by the
    /// stage-at-a-time executor, which runs producers to completion before
    /// consumers start pulling). On a closed queue nothing is returned, but
    /// any handles that raced into the buffer after [`Self::close`]'s sweep
    /// are dropped here so their staging charges are released rather than
    /// leaked until channel teardown.
    pub fn drain(&self) -> Vec<BlockHandle> {
        let mut out = Vec::new();
        while let Some(handle) = self.pop() {
            out.push(handle);
        }
        if self.is_closed() {
            while self.receiver.try_recv().is_ok() {}
        }
        out
    }

    /// Number of messages currently buffered (blocks plus completion markers).
    pub fn len(&self) -> usize {
        self.receiver.len()
    }

    /// True if no messages are buffered.
    pub fn is_empty(&self) -> bool {
        self.receiver.is_empty()
    }
}

/// RAII producer registration for a [`BlockQueue`]; see
/// [`BlockQueue::register_producer`].
#[derive(Debug)]
pub struct ProducerGuard {
    queue: BlockQueue,
    finished: bool,
}

impl ProducerGuard {
    /// Push a block on behalf of this producer.
    pub fn push(&self, handle: BlockHandle) -> Result<()> {
        self.queue.push(handle)
    }

    /// Explicitly signal completion (otherwise `Drop` does it).
    pub fn done(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        if !self.finished {
            self.finished = true;
            let _ = self.queue.producer_done();
        }
    }
}

impl Drop for ProducerGuard {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetex_common::{Block, BlockId, BlockMeta, ColumnData, MemoryNodeId};
    use std::thread;
    use std::time::Duration;

    fn handle(id: usize) -> BlockHandle {
        let block = Block::new(vec![ColumnData::Int64(vec![id as i64])], 1).unwrap();
        BlockHandle::new(block, BlockMeta::new(BlockId::new(id), MemoryNodeId::new(0)))
    }

    #[test]
    fn push_pop_round_trip() {
        let q = BlockQueue::new(1);
        q.push(handle(1)).unwrap();
        q.push(handle(2)).unwrap();
        q.producer_done().unwrap();
        assert_eq!(q.pop().unwrap().meta().id, BlockId::new(1));
        assert_eq!(q.pop().unwrap().meta().id, BlockId::new(2));
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn consumer_terminates_after_all_producers_finish() {
        let q = BlockQueue::new(2);
        q.push(handle(1)).unwrap();
        q.producer_done().unwrap();
        // Only one of two producers is done: a block is still delivered.
        assert!(q.pop().is_some());
        q.producer_done().unwrap();
        assert!(q.pop().is_none());
    }

    #[test]
    fn multiple_producer_threads_deliver_everything() {
        let q = BlockQueue::new(4);
        let mut handles = Vec::new();
        for t in 0..4 {
            let q = q.clone();
            handles.push(thread::spawn(move || {
                for i in 0..100 {
                    q.push(handle(t * 1000 + i)).unwrap();
                }
                q.producer_done().unwrap();
            }));
        }
        let consumer = {
            let q = q.clone();
            thread::spawn(move || q.drain().len())
        };
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(consumer.join().unwrap(), 400);
    }

    #[test]
    fn drain_collects_all_pending_blocks() {
        let q = BlockQueue::new(1);
        for i in 0..10 {
            q.push(handle(i)).unwrap();
        }
        q.producer_done().unwrap();
        assert_eq!(q.drain().len(), 10);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn add_producer_extends_termination_condition() {
        let q = BlockQueue::new(0);
        q.add_producer();
        q.push(handle(1)).unwrap();
        q.producer_done().unwrap();
        assert!(q.pop().is_some());
        assert!(q.pop().is_none());
    }

    #[test]
    fn bounded_queue_applies_backpressure() {
        let q = BlockQueue::bounded(1, 2);
        q.push(handle(1)).unwrap();
        q.push(handle(2)).unwrap();
        let producer = {
            let q = q.clone();
            thread::spawn(move || {
                // Capacity 2 (+1 marker slot): the fourth push must block
                // until the consumer drains.
                q.push(handle(3)).unwrap();
                q.push(handle(4)).unwrap();
                q.producer_done().unwrap();
            })
        };
        thread::sleep(Duration::from_millis(20));
        assert!(q.len() <= 3, "bounded queue overfilled: {}", q.len());
        let drained = q.drain();
        producer.join().unwrap();
        assert_eq!(drained.len(), 4);
    }

    #[test]
    fn close_unblocks_a_waiting_consumer() {
        let q = BlockQueue::new(1);
        let consumer = {
            let q = q.clone();
            thread::spawn(move || q.pop())
        };
        thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().unwrap().map(|h| h.rows()), None);
        // Pushes after close fail instead of piling up.
        assert!(q.push(handle(1)).is_err());
        // producer_done after close is tolerated (unwinding producers).
        assert!(q.producer_done().is_ok());
    }

    #[test]
    fn close_releases_a_producer_blocked_on_a_full_queue() {
        // Regression test: the pipelined executor's error path closes a dead
        // worker's input queue; a producer already blocked in push() on the
        // full queue must fail out instead of deadlocking the shutdown.
        let q = BlockQueue::bounded(1, 1);
        let producer = {
            let q = q.clone();
            thread::spawn(move || {
                let mut pushed = 0;
                while q.push(handle(pushed)).is_ok() {
                    pushed += 1;
                }
                pushed
            })
        };
        thread::sleep(Duration::from_millis(30));
        q.close();
        let pushed = producer.join().expect("producer must not deadlock");
        assert!(pushed >= 2, "queue accepted {pushed} pushes before close");
    }

    #[test]
    fn close_releases_a_producer_completing_against_a_full_queue() {
        // producer_done() must also recheck the closed flag while waiting on
        // a full queue: guards signal completion from Drop during shutdown,
        // and a dead consumer must not deadlock them.
        let q = BlockQueue::bounded(1, 1);
        // Capacity 1 (+1 marker slot): two pushes fill the channel, so the
        // completion marker has nowhere to go.
        q.push(handle(0)).unwrap();
        q.push(handle(1)).unwrap();
        let producer = {
            let q = q.clone();
            thread::spawn(move || q.producer_done())
        };
        thread::sleep(Duration::from_millis(30));
        q.close();
        assert!(producer.join().expect("producer_done must not deadlock").is_ok());
    }

    /// A staging-token stand-in that counts its releases (the real token is
    /// the executor's lease bundle; the queue only sees `dyn Any`).
    struct ReleaseCounter(Arc<AtomicUsize>);
    impl Drop for ReleaseCounter {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn staged_handle(id: usize, released: &Arc<AtomicUsize>) -> BlockHandle {
        let mut h = handle(id);
        h.attach_staging(Arc::new(ReleaseCounter(Arc::clone(released))));
        h
    }

    #[test]
    fn close_releases_staging_charges_of_queued_handles() {
        // Regression test: close() used to leave buffered handles in the
        // channel (pop returns None on a closed queue), keeping their staging
        // leases charged until the channel was torn down — a leak on every
        // error/panic shutdown path.
        let released = Arc::new(AtomicUsize::new(0));
        let q = BlockQueue::new(1);
        for i in 0..5 {
            q.push(staged_handle(i, &released)).unwrap();
        }
        assert_eq!(released.load(Ordering::SeqCst), 0);
        q.close();
        assert_eq!(
            released.load(Ordering::SeqCst),
            5,
            "closing the queue must release the staging charges of queued handles"
        );
        // drain() on the closed queue returns nothing and sweeps stragglers.
        assert!(q.drain().is_empty());
    }

    #[test]
    fn drain_after_close_sweeps_raced_in_handles() {
        let released = Arc::new(AtomicUsize::new(0));
        let q = BlockQueue::new(1);
        q.close();
        // Simulate a producer whose send was in flight when close() swept:
        // deposit directly into the channel after the sweep.
        q.sender.send(Message::Block(staged_handle(7, &released))).unwrap();
        assert_eq!(released.load(Ordering::SeqCst), 0);
        assert!(q.drain().is_empty());
        assert_eq!(released.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn byte_quota_admission_parks_and_resumes() {
        let q = BlockQueue::new(1).with_byte_quota(100);
        let a = q.admit(60).unwrap().expect("governed");
        let b = q.admit(40).unwrap().expect("fits exactly");
        assert_eq!(q.outstanding_bytes(), 100);
        // The quota is full: a third admission parks until a slot drops.
        let waiter = {
            let q = q.clone();
            thread::spawn(move || q.admit(50))
        };
        thread::sleep(Duration::from_millis(30));
        drop(a);
        let slot = waiter.join().unwrap().unwrap().expect("parked admission resumed");
        assert_eq!(q.outstanding_bytes(), 90);
        drop(slot);
        drop(b);
        // Zero-byte blocks and ungoverned queues admit freely.
        assert!(q.admit(0).unwrap().is_none());
        assert!(BlockQueue::new(1).admit(10).unwrap().is_none());
    }

    #[test]
    fn an_empty_account_admits_an_oversized_block() {
        // A block larger than the quota must flow one-at-a-time rather than
        // wedging the pipeline (the tiny-budget liveness rule).
        let q = BlockQueue::new(1).with_byte_quota(10);
        let big = q.admit(64).unwrap().expect("admitted");
        assert_eq!(q.outstanding_bytes(), 64);
        // But only while the account is empty: the next admission parks
        // until the oversized block is released.
        let waiter = {
            let q = q.clone();
            thread::spawn(move || q.admit(1))
        };
        thread::sleep(Duration::from_millis(30));
        assert!(!waiter.is_finished(), "admission over a held oversized block must park");
        drop(big);
        assert!(waiter.join().unwrap().unwrap().is_some());
    }

    #[test]
    fn close_releases_a_producer_parked_in_admission() {
        let q = BlockQueue::new(1).with_byte_quota(10);
        let _held = q.admit(10).unwrap();
        let waiter = {
            let q = q.clone();
            thread::spawn(move || q.admit(10))
        };
        thread::sleep(Duration::from_millis(30));
        q.close();
        let err = waiter.join().unwrap().expect_err("admission on a closed queue fails");
        assert_eq!(err.category(), "cancelled");
    }

    #[test]
    fn queue_placement_is_recorded() {
        let q = BlockQueue::bounded(1, 4).on_node(MemoryNodeId::new(3));
        assert_eq!(q.node(), Some(MemoryNodeId::new(3)));
        // Clones share the placement.
        assert_eq!(q.clone().node(), Some(MemoryNodeId::new(3)));
        assert_eq!(BlockQueue::new(1).node(), None);
    }

    #[test]
    fn panicking_producer_does_not_deadlock_the_consumer() {
        // Regression test: without the guard's Drop signal, the consumer
        // would block in pop() forever after the producer panics before
        // calling producer_done().
        let q = BlockQueue::new(0);
        let guard = q.register_producer();
        let producer = thread::spawn(move || {
            guard.push(handle(1)).unwrap();
            panic!("producer died before producer_done()");
        });
        assert!(producer.join().is_err());
        // The panicked producer's guard signalled completion during unwind:
        // the consumer sees the pushed block, then clean termination.
        assert!(q.pop().is_some());
        assert!(q.pop().is_none());
    }

    #[test]
    fn producer_guard_done_signals_exactly_once() {
        let q = BlockQueue::new(0);
        let g1 = q.register_producer();
        let g2 = q.register_producer();
        g1.push(handle(1)).unwrap();
        g1.done();
        assert!(q.pop().is_some());
        drop(g2);
        assert!(q.pop().is_none());
    }
}
