//! Asynchronous block-handle queues.
//!
//! Routers and the gpu2cpu operator connect producer and consumer pipeline
//! instances through asynchronous queues of block *handles* (§3.1). A queue
//! supports many producers and terminates the consumer cleanly once every
//! registered producer has finished. Two variants exist:
//!
//! * [`BlockQueue::new`] — unbounded (the paper's staging memory is
//!   pre-allocated by the block managers, so back-pressure can be handled
//!   there);
//! * [`BlockQueue::bounded`] — bounded to a fixed number of buffered blocks,
//!   giving the pipelined executor explicit back-pressure: a producer blocks
//!   in [`BlockQueue::push`] until the consumer drains a slot, modeling a
//!   finite staging arena.
//!
//! The buffer is an in-process deque guarded by one mutex (it used to be a
//! channel): the pipelined executor's adaptive re-routing needs *tail* access
//! — [`BlockQueue::steal`] lets an idle sibling worker remove the most
//! recently enqueued block from an overloaded consumer's backlog, which a
//! FIFO channel cannot express. Stealing takes from the tail on purpose: the
//! head blocks are the ones the victim will pop next anyway (taking them
//! races the victim for work it is about to start), while tail blocks are the
//! ones that would otherwise wait behind the victim's whole backlog.
//!
//! Termination is cooperative: producers register (`new(n)` /
//! [`BlockQueue::add_producer`] / [`BlockQueue::register_producer`]) and
//! signal completion ([`BlockQueue::producer_done`]); `pop` returns `None`
//! once every producer finished and the queue drained. Two safety valves stop
//! a consumer from deadlocking when a producer dies abnormally:
//!
//! * [`BlockQueue::close`] poisons the queue — every pending and future `pop`
//!   returns `None`, every future `push` fails, and every future `steal`
//!   returns `None` — and is called by the executor when a worker errors out,
//!   cascading shutdown upstream;
//! * [`ProducerGuard`] (from [`BlockQueue::register_producer`]) signals
//!   `producer_done` from its `Drop` impl, so a producer that panics before
//!   finishing still releases its consumer during unwinding.

use hetex_common::{BlockHandle, HetError, MemoryNodeId, Result};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::{Duration, Instant};

/// Byte-quota accounting of one queue: how many staged bytes are outstanding
/// (admitted but not yet dropped by the consumer) against the queue's share
/// of its node's staging arena. Shared by all clones of the queue.
#[derive(Debug)]
struct QueueStaging {
    /// The queue's byte share of its node's staging budget. Atomic because
    /// the demand-weighted quota re-split (`hetex_core::cost`) adjusts live
    /// quotas on a cadence while producers are admitting.
    quota: AtomicU64,
    /// Outstanding admitted bytes.
    outstanding: StdMutex<u64>,
    /// Signalled whenever outstanding bytes shrink, the quota grows, or the
    /// queue closes.
    drained_cv: Condvar,
    /// Cumulative admitted bytes over the queue's lifetime — the demand
    /// signal the quota re-split reads.
    admitted_total: AtomicU64,
}

/// RAII receipt of one byte admission into a [`BlockQueue`]; dropping it
/// returns the bytes to the queue's quota and wakes parked producers. The
/// executor bundles this with the arena [`BlockLease`] into the handle's
/// staging token, so consumer-side drops release both at once.
#[derive(Debug)]
pub struct QueueSlot {
    bytes: u64,
    staging: Arc<QueueStaging>,
}

impl Drop for QueueSlot {
    fn drop(&mut self) {
        let mut outstanding = self.staging.outstanding.lock().unwrap_or_else(|e| e.into_inner());
        *outstanding = outstanding.saturating_sub(self.bytes);
        drop(outstanding);
        self.staging.drained_cv.notify_all();
    }
}

/// The buffered blocks plus the completion count, guarded by one mutex.
#[derive(Debug, Default)]
struct QueueInner {
    buf: VecDeque<BlockHandle>,
    finished: usize,
}

/// State shared by all clones of one queue.
#[derive(Debug)]
struct QueueCore {
    /// Maximum buffered blocks before `push` parks; `None` = unbounded.
    capacity: Option<usize>,
    inner: StdMutex<QueueInner>,
    /// Consumers parked in `pop` wait here for blocks (or completion).
    not_empty: Condvar,
    /// Producers parked in `push` wait here for a freed slot.
    not_full: Condvar,
    producers: AtomicUsize,
    closed: AtomicBool,
}

/// Outcome of a non-blocking (or bounded-wait) [`BlockQueue::try_pop`] /
/// [`BlockQueue::pop_timeout`].
#[derive(Debug)]
pub enum PopNext {
    /// A buffered block.
    Block(BlockHandle),
    /// Nothing buffered right now, but producers are still registered — more
    /// blocks may arrive (the work-stealing window).
    Empty,
    /// The stream ended: every producer finished and the queue drained, or
    /// the queue was closed.
    Finished,
}

/// A multi-producer, single-consumer queue of block handles (plus sibling
/// thieves entering through [`BlockQueue::steal`]).
#[derive(Clone)]
pub struct BlockQueue {
    core: Arc<QueueCore>,
    /// Byte-quota admission state; `None` leaves admission ungoverned.
    staging: Option<Arc<QueueStaging>>,
    /// Memory node this queue (and its buffered handles) is placed on — the
    /// consumer's local node under the NUMA-aware placement policy.
    node: Option<MemoryNodeId>,
}

impl std::fmt::Debug for BlockQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.core.inner.lock().unwrap_or_else(|e| e.into_inner());
        f.debug_struct("BlockQueue")
            .field("producers", &self.core.producers.load(Ordering::Relaxed))
            .field("finished", &inner.finished)
            .field("pending", &inner.buf.len())
            .field("closed", &self.core.closed.load(Ordering::Relaxed))
            .finish()
    }
}

/// How long a parked wait sleeps between rechecks of the closed flag (and of
/// the producer count, which `add_producer` may raise without a wake-up).
const PARK_RECHECK: Duration = Duration::from_millis(10);

impl BlockQueue {
    /// An unbounded queue expecting `producers` producers.
    pub fn new(producers: usize) -> Self {
        Self::with_capacity(producers, None)
    }

    /// A bounded queue expecting `producers` producers: at most `capacity`
    /// blocks buffer before `push` blocks (back-pressure).
    pub fn bounded(producers: usize, capacity: usize) -> Self {
        Self::with_capacity(producers, Some(capacity.max(1)))
    }

    fn with_capacity(producers: usize, capacity: Option<usize>) -> Self {
        Self {
            core: Arc::new(QueueCore {
                capacity,
                inner: StdMutex::new(QueueInner::default()),
                not_empty: Condvar::new(),
                not_full: Condvar::new(),
                producers: AtomicUsize::new(producers),
                closed: AtomicBool::new(false),
            }),
            staging: None,
            node: None,
        }
    }

    /// Govern admission by a byte quota: [`Self::admit`] parks producers once
    /// `quota` bytes are outstanding. Call before cloning the queue (the
    /// state is shared by clones made afterwards).
    pub fn with_byte_quota(mut self, quota: u64) -> Self {
        self.staging = Some(Arc::new(QueueStaging {
            quota: AtomicU64::new(quota.max(1)),
            outstanding: StdMutex::new(0),
            drained_cv: Condvar::new(),
            admitted_total: AtomicU64::new(0),
        }));
        self
    }

    /// Adjust a governed queue's byte quota in place (shared by all clones).
    /// Growing the quota wakes producers parked in [`Self::admit`] so they
    /// re-check against the new share; shrinking only affects future
    /// admissions — already-admitted bytes are never revoked. No-op on an
    /// ungoverned queue.
    pub fn set_byte_quota(&self, quota: u64) {
        if let Some(staging) = &self.staging {
            staging.quota.store(quota.max(1), Ordering::SeqCst);
            staging.drained_cv.notify_all();
        }
    }

    /// The queue's current byte quota, or `None` when admission is
    /// ungoverned.
    pub fn byte_quota(&self) -> Option<u64> {
        self.staging.as_ref().map(|s| s.quota.load(Ordering::SeqCst))
    }

    /// Cumulative bytes ever admitted into this queue — the demand signal of
    /// the quota re-split. Zero on ungoverned queues.
    pub fn admitted_bytes_total(&self) -> u64 {
        self.staging.as_ref().map(|s| s.admitted_total.load(Ordering::Relaxed)).unwrap_or(0)
    }

    /// Record the memory node this queue is placed on (the consumer's local
    /// node). Call before cloning the queue.
    pub fn on_node(mut self, node: MemoryNodeId) -> Self {
        self.node = Some(node);
        self
    }

    /// The memory node this queue is placed on, if recorded.
    pub fn node(&self) -> Option<MemoryNodeId> {
        self.node
    }

    /// Bytes currently admitted and not yet released by the consumer.
    pub fn outstanding_bytes(&self) -> u64 {
        self.staging
            .as_ref()
            .map(|s| *s.outstanding.lock().unwrap_or_else(|e| e.into_inner()))
            .unwrap_or(0)
    }

    /// Admit `bytes` against the queue's byte quota, parking while the quota
    /// is exhausted. Returns the RAII receipt to bundle into the handle's
    /// staging token, or `None` when the queue is ungoverned (no quota
    /// configured, or a zero-byte block).
    ///
    /// Like [`Self::push`] on a full bounded queue, the wait has no deadline
    /// of its own — back-pressure may legitimately last as long as an
    /// upstream build runs — but it periodically rechecks the closed flag, so
    /// `close()` releases parked producers during shutdown instead of
    /// deadlocking them. (The arena acquisition that follows admission keeps
    /// a timeout and remains the backstop against genuine wedges.)
    ///
    /// An *empty* account always admits one block even if it exceeds the
    /// quota — a block larger than the quota must still be able to flow, one
    /// at a time, or a tiny budget would wedge the pipeline instead of merely
    /// slowing it.
    pub fn admit(&self, bytes: u64) -> Result<Option<QueueSlot>> {
        let Some(staging) = &self.staging else { return Ok(None) };
        if bytes == 0 {
            return Ok(None);
        }
        let mut outstanding = staging.outstanding.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if self.core.closed.load(Ordering::SeqCst) {
                return Err(HetError::Cancelled("block queue closed".into()));
            }
            if *outstanding == 0 || *outstanding + bytes <= staging.quota.load(Ordering::SeqCst) {
                *outstanding += bytes;
                staging.admitted_total.fetch_add(bytes, Ordering::Relaxed);
                return Ok(Some(QueueSlot { bytes, staging: Arc::clone(staging) }));
            }
            let (guard, _) = staging
                .drained_cv
                .wait_timeout(outstanding, Duration::from_millis(50))
                .unwrap_or_else(|e| e.into_inner());
            outstanding = guard;
        }
    }

    /// Register one more producer (used when a router instantiates additional
    /// pipeline instances after the queue was created).
    pub fn add_producer(&self) {
        self.core.producers.fetch_add(1, Ordering::SeqCst);
    }

    /// Register a producer and return an RAII guard for it: the guard pushes
    /// on the producer's behalf and signals `producer_done` when dropped (or
    /// explicitly via [`ProducerGuard::done`]). Because the signal lives in
    /// `Drop`, a producer that panics mid-stream still terminates its
    /// consumer instead of deadlocking it.
    pub fn register_producer(&self) -> ProducerGuard {
        self.add_producer();
        ProducerGuard { queue: self.clone(), finished: false }
    }

    /// Push a block handle into the queue, blocking on a full bounded queue.
    /// Fails if the queue was closed — including while blocked on a full
    /// queue whose consumer died: the wait periodically rechecks the closed
    /// flag, so `close()` releases stuck producers instead of deadlocking
    /// them.
    pub fn push(&self, handle: BlockHandle) -> Result<()> {
        let mut inner = self.core.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if self.core.closed.load(Ordering::SeqCst) {
                return Err(HetError::Cancelled("block queue closed".into()));
            }
            if self.core.capacity.is_none_or(|cap| inner.buf.len() < cap) {
                inner.buf.push_back(handle);
                drop(inner);
                self.core.not_empty.notify_all();
                return Ok(());
            }
            let (guard, _) = self
                .core
                .not_full
                .wait_timeout(inner, PARK_RECHECK)
                .unwrap_or_else(|e| e.into_inner());
            inner = guard;
        }
    }

    /// Signal that one producer has no more blocks to push. Completion is a
    /// counter, not an in-band message, so it never blocks — a completing
    /// producer cannot deadlock against a full queue or a dead consumer, and
    /// unwinding guards may call this unconditionally.
    pub fn producer_done(&self) -> Result<()> {
        let mut inner = self.core.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.finished += 1;
        drop(inner);
        self.core.not_empty.notify_all();
        Ok(())
    }

    /// Poison the queue: every pending and future [`Self::pop`] returns
    /// `None`, every future [`Self::push`] fails, and [`Self::steal`] finds
    /// nothing. Used to cascade shutdown when a worker dies abnormally.
    ///
    /// Handles still buffered in the queue are dropped here, so the staging
    /// charges they carry are released immediately — a closed queue must not
    /// keep arena bytes leased (and producers parked on them) until the
    /// queue itself is torn down.
    pub fn close(&self) {
        self.core.closed.store(true, Ordering::SeqCst);
        let swept: Vec<BlockHandle> = {
            let mut inner = self.core.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.buf.drain(..).collect()
        };
        // Release the staging charges outside the buffer lock: QueueSlot
        // drops take the (separate) staging lock and notify parked producers.
        drop(swept);
        self.core.not_empty.notify_all();
        self.core.not_full.notify_all();
        // Wake producers parked in `admit` so they observe the closed flag.
        if let Some(staging) = &self.staging {
            staging.drained_cv.notify_all();
        }
    }

    /// True once the queue has been closed.
    pub fn is_closed(&self) -> bool {
        self.core.closed.load(Ordering::SeqCst)
    }

    /// Pop the next block handle, or `None` once every producer finished and
    /// the queue drained (or the queue was closed).
    pub fn pop(&self) -> Option<BlockHandle> {
        let mut inner = self.core.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if self.core.closed.load(Ordering::SeqCst) {
                return None;
            }
            if let Some(handle) = inner.buf.pop_front() {
                drop(inner);
                self.core.not_full.notify_all();
                return Some(handle);
            }
            if inner.finished >= self.core.producers.load(Ordering::SeqCst) {
                return None;
            }
            let (guard, _) = self
                .core
                .not_empty
                .wait_timeout(inner, PARK_RECHECK)
                .unwrap_or_else(|e| e.into_inner());
            inner = guard;
        }
    }

    /// Non-blocking pop distinguishing "empty for now" from "stream over" —
    /// the decision point of the work-stealing loop: an [`PopNext::Empty`] /
    /// [`PopNext::Finished`] consumer may go steal from a sibling instead of
    /// parking (or exiting) while a straggler holds a backlog.
    pub fn try_pop(&self) -> PopNext {
        self.pop_deadline(None)
    }

    /// Like [`Self::try_pop`], but waits up to `timeout` for a block before
    /// reporting [`PopNext::Empty`].
    pub fn pop_timeout(&self, timeout: Duration) -> PopNext {
        self.pop_deadline(Some(Instant::now() + timeout))
    }

    fn pop_deadline(&self, deadline: Option<Instant>) -> PopNext {
        let mut inner = self.core.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if self.core.closed.load(Ordering::SeqCst) {
                return PopNext::Finished;
            }
            if let Some(handle) = inner.buf.pop_front() {
                drop(inner);
                self.core.not_full.notify_all();
                return PopNext::Block(handle);
            }
            if inner.finished >= self.core.producers.load(Ordering::SeqCst) {
                return PopNext::Finished;
            }
            let now = Instant::now();
            let Some(deadline) = deadline else { return PopNext::Empty };
            if now >= deadline {
                return PopNext::Empty;
            }
            let wait = (deadline - now).min(PARK_RECHECK);
            let (guard, _) =
                self.core.not_empty.wait_timeout(inner, wait).unwrap_or_else(|e| e.into_inner());
            inner = guard;
        }
    }

    /// Remove the most recently enqueued block from this queue's backlog —
    /// the producer-side entry point of adaptive re-routing. Returns `None`
    /// when the queue is closed (poisoned backlogs were already swept and
    /// their staging released; a thief must not resurrect them) or holds no
    /// block. Never consumes completion signals: termination accounting is a
    /// counter and is untouched by theft.
    ///
    /// The stolen handle still carries the staging charge of *this* queue
    /// (its byte-quota slot and the lease on this queue's node); the thief
    /// must release it and re-charge its own node before processing — the
    /// cross-node half of the lease-ordering rule (DESIGN.md §4.2).
    pub fn steal(&self) -> Option<BlockHandle> {
        if self.core.closed.load(Ordering::SeqCst) {
            return None;
        }
        let stolen = {
            let mut inner = self.core.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.buf.pop_back()
        };
        if stolen.is_some() {
            // A freed slot releases a producer parked on a full queue.
            self.core.not_full.notify_all();
        }
        stolen
    }

    /// Return a just-removed block to the tail of the queue without blocking:
    /// capacity is deliberately ignored (the block vacated a slot moments ago
    /// — at worst the buffer transiently exceeds its bound by the one block
    /// being returned). Two callers: a thief whose profitability check
    /// rejected a stolen block, and a sim-paced consumer un-claiming a block
    /// so an idle sibling can steal it. Fails only when the queue was closed
    /// in between; the caller must then let the block drop, exactly as
    /// [`Self::close`]'s sweep would have.
    pub fn give_back(&self, handle: BlockHandle) -> Result<()> {
        let mut inner = self.core.inner.lock().unwrap_or_else(|e| e.into_inner());
        if self.core.closed.load(Ordering::SeqCst) {
            return Err(HetError::Cancelled("block queue closed".into()));
        }
        inner.buf.push_back(handle);
        drop(inner);
        self.core.not_empty.notify_all();
        Ok(())
    }

    /// Drain everything currently reachable into a vector (used by the
    /// stage-at-a-time executor, which runs producers to completion before
    /// consumers start pulling). On a closed queue nothing is returned; any
    /// handles buffered at close time were dropped by the closing sweep so
    /// their staging charges are released rather than leaked.
    pub fn drain(&self) -> Vec<BlockHandle> {
        let mut out = Vec::new();
        while let Some(handle) = self.pop() {
            out.push(handle);
        }
        out
    }

    /// Memory node of the block a thief would take ([`Self::steal`] removes
    /// the tail), or `None` when nothing is buffered. Advisory: the tail can
    /// change between the peek and the steal, so callers may only use it for
    /// estimates (the steal profitability pre-check prices the relocation
    /// route from here), never for correctness.
    pub fn tail_location(&self) -> Option<MemoryNodeId> {
        let inner = self.core.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.buf.back().map(|h| h.meta().location)
    }

    /// Number of blocks currently buffered (completion signals are counters,
    /// not messages, so this is exactly the stealable backlog depth).
    pub fn len(&self) -> usize {
        self.core.inner.lock().unwrap_or_else(|e| e.into_inner()).buf.len()
    }

    /// True if no blocks are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// RAII producer registration for a [`BlockQueue`]; see
/// [`BlockQueue::register_producer`].
#[derive(Debug)]
pub struct ProducerGuard {
    queue: BlockQueue,
    finished: bool,
}

impl ProducerGuard {
    /// Push a block on behalf of this producer.
    pub fn push(&self, handle: BlockHandle) -> Result<()> {
        self.queue.push(handle)
    }

    /// Explicitly signal completion (otherwise `Drop` does it).
    pub fn done(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        if !self.finished {
            self.finished = true;
            let _ = self.queue.producer_done();
        }
    }
}

impl Drop for ProducerGuard {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetex_common::{Block, BlockId, BlockMeta, ColumnData, MemoryNodeId};
    use std::thread;
    use std::time::Duration;

    fn handle(id: usize) -> BlockHandle {
        let block = Block::new(vec![ColumnData::Int64(vec![id as i64])], 1).unwrap();
        BlockHandle::new(block, BlockMeta::new(BlockId::new(id), MemoryNodeId::new(0)))
    }

    #[test]
    fn push_pop_round_trip() {
        let q = BlockQueue::new(1);
        q.push(handle(1)).unwrap();
        q.push(handle(2)).unwrap();
        q.producer_done().unwrap();
        assert_eq!(q.pop().unwrap().meta().id, BlockId::new(1));
        assert_eq!(q.pop().unwrap().meta().id, BlockId::new(2));
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn consumer_terminates_after_all_producers_finish() {
        let q = BlockQueue::new(2);
        q.push(handle(1)).unwrap();
        q.producer_done().unwrap();
        // Only one of two producers is done: a block is still delivered.
        assert!(q.pop().is_some());
        q.producer_done().unwrap();
        assert!(q.pop().is_none());
    }

    #[test]
    fn multiple_producer_threads_deliver_everything() {
        let q = BlockQueue::new(4);
        let mut handles = Vec::new();
        for t in 0..4 {
            let q = q.clone();
            handles.push(thread::spawn(move || {
                for i in 0..100 {
                    q.push(handle(t * 1000 + i)).unwrap();
                }
                q.producer_done().unwrap();
            }));
        }
        let consumer = {
            let q = q.clone();
            thread::spawn(move || q.drain().len())
        };
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(consumer.join().unwrap(), 400);
    }

    #[test]
    fn drain_collects_all_pending_blocks() {
        let q = BlockQueue::new(1);
        for i in 0..10 {
            q.push(handle(i)).unwrap();
        }
        q.producer_done().unwrap();
        assert_eq!(q.drain().len(), 10);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn add_producer_extends_termination_condition() {
        let q = BlockQueue::new(0);
        q.add_producer();
        q.push(handle(1)).unwrap();
        q.producer_done().unwrap();
        assert!(q.pop().is_some());
        assert!(q.pop().is_none());
    }

    #[test]
    fn bounded_queue_applies_backpressure() {
        let q = BlockQueue::bounded(1, 2);
        q.push(handle(1)).unwrap();
        q.push(handle(2)).unwrap();
        let producer = {
            let q = q.clone();
            thread::spawn(move || {
                // Capacity 2: the third push must block until the consumer
                // drains.
                q.push(handle(3)).unwrap();
                q.push(handle(4)).unwrap();
                q.producer_done().unwrap();
            })
        };
        thread::sleep(Duration::from_millis(20));
        assert!(q.len() <= 2, "bounded queue overfilled: {}", q.len());
        let drained = q.drain();
        producer.join().unwrap();
        assert_eq!(drained.len(), 4);
    }

    #[test]
    fn close_unblocks_a_waiting_consumer() {
        let q = BlockQueue::new(1);
        let consumer = {
            let q = q.clone();
            thread::spawn(move || q.pop())
        };
        thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().unwrap().map(|h| h.rows()), None);
        // Pushes after close fail instead of piling up.
        assert!(q.push(handle(1)).is_err());
        // producer_done after close is tolerated (unwinding producers).
        assert!(q.producer_done().is_ok());
    }

    #[test]
    fn close_releases_a_producer_blocked_on_a_full_queue() {
        // Regression test: the pipelined executor's error path closes a dead
        // worker's input queue; a producer already blocked in push() on the
        // full queue must fail out instead of deadlocking the shutdown.
        let q = BlockQueue::bounded(1, 1);
        let producer = {
            let q = q.clone();
            thread::spawn(move || {
                let mut pushed = 0;
                while q.push(handle(pushed)).is_ok() {
                    pushed += 1;
                }
                pushed
            })
        };
        thread::sleep(Duration::from_millis(30));
        q.close();
        let pushed = producer.join().expect("producer must not deadlock");
        assert!(pushed >= 1, "queue accepted {pushed} pushes before close");
    }

    #[test]
    fn completion_never_blocks_on_a_full_queue() {
        // Completion is a counter: even with the buffer full, producer_done
        // returns immediately (guards signal from Drop during shutdown and
        // must never deadlock against a slow or dead consumer).
        let q = BlockQueue::bounded(1, 1);
        q.push(handle(0)).unwrap();
        assert!(q.producer_done().is_ok());
        assert!(q.pop().is_some());
        assert!(q.pop().is_none());
    }

    /// A staging-token stand-in that counts its releases (the real token is
    /// the executor's lease bundle; the queue only sees `dyn Any`).
    struct ReleaseCounter(Arc<AtomicUsize>);
    impl Drop for ReleaseCounter {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn staged_handle(id: usize, released: &Arc<AtomicUsize>) -> BlockHandle {
        let mut h = handle(id);
        h.attach_staging(Arc::new(ReleaseCounter(Arc::clone(released))));
        h
    }

    #[test]
    fn close_releases_staging_charges_of_queued_handles() {
        // Regression test: close() used to leave buffered handles in the
        // channel (pop returns None on a closed queue), keeping their staging
        // leases charged until the channel was torn down — a leak on every
        // error/panic shutdown path.
        let released = Arc::new(AtomicUsize::new(0));
        let q = BlockQueue::new(1);
        for i in 0..5 {
            q.push(staged_handle(i, &released)).unwrap();
        }
        assert_eq!(released.load(Ordering::SeqCst), 0);
        q.close();
        assert_eq!(
            released.load(Ordering::SeqCst),
            5,
            "closing the queue must release the staging charges of queued handles"
        );
        // drain() on the closed queue returns nothing.
        assert!(q.drain().is_empty());
    }

    #[test]
    fn byte_quota_admission_parks_and_resumes() {
        let q = BlockQueue::new(1).with_byte_quota(100);
        let a = q.admit(60).unwrap().expect("governed");
        let b = q.admit(40).unwrap().expect("fits exactly");
        assert_eq!(q.outstanding_bytes(), 100);
        // The quota is full: a third admission parks until a slot drops.
        let waiter = {
            let q = q.clone();
            thread::spawn(move || q.admit(50))
        };
        thread::sleep(Duration::from_millis(30));
        drop(a);
        let slot = waiter.join().unwrap().unwrap().expect("parked admission resumed");
        assert_eq!(q.outstanding_bytes(), 90);
        drop(slot);
        drop(b);
        // Zero-byte blocks and ungoverned queues admit freely.
        assert!(q.admit(0).unwrap().is_none());
        assert!(BlockQueue::new(1).admit(10).unwrap().is_none());
    }

    #[test]
    fn quota_can_be_resized_live_and_releases_parked_producers() {
        let q = BlockQueue::new(1).with_byte_quota(100);
        assert_eq!(q.byte_quota(), Some(100));
        assert_eq!(q.admitted_bytes_total(), 0);
        let held = q.admit(100).unwrap().expect("governed");
        assert_eq!(q.admitted_bytes_total(), 100);
        // A producer parks against the exhausted quota…
        let waiter = {
            let q = q.clone();
            thread::spawn(move || q.admit(60))
        };
        thread::sleep(Duration::from_millis(30));
        assert!(!waiter.is_finished(), "admission over a full quota must park");
        // …and a demand-driven quota grow admits it without any release.
        q.set_byte_quota(200);
        assert_eq!(q.byte_quota(), Some(200));
        let slot = waiter.join().unwrap().unwrap().expect("grown quota admits");
        assert_eq!(q.outstanding_bytes(), 160);
        assert_eq!(q.admitted_bytes_total(), 160);
        drop(slot);
        drop(held);
        // Shrinking never revokes admitted bytes, it only governs the future.
        q.set_byte_quota(10);
        let big = q.admit(64).unwrap().expect("empty account still admits");
        drop(big);
        // Clones share the quota cell; ungoverned queues report none.
        assert_eq!(q.clone().byte_quota(), Some(10));
        let ungoverned = BlockQueue::new(1);
        ungoverned.set_byte_quota(50);
        assert_eq!(ungoverned.byte_quota(), None);
        assert_eq!(ungoverned.admitted_bytes_total(), 0);
    }

    #[test]
    fn an_empty_account_admits_an_oversized_block() {
        // A block larger than the quota must flow one-at-a-time rather than
        // wedging the pipeline (the tiny-budget liveness rule).
        let q = BlockQueue::new(1).with_byte_quota(10);
        let big = q.admit(64).unwrap().expect("admitted");
        assert_eq!(q.outstanding_bytes(), 64);
        // But only while the account is empty: the next admission parks
        // until the oversized block is released.
        let waiter = {
            let q = q.clone();
            thread::spawn(move || q.admit(1))
        };
        thread::sleep(Duration::from_millis(30));
        assert!(!waiter.is_finished(), "admission over a held oversized block must park");
        drop(big);
        assert!(waiter.join().unwrap().unwrap().is_some());
    }

    #[test]
    fn close_releases_a_producer_parked_in_admission() {
        let q = BlockQueue::new(1).with_byte_quota(10);
        let _held = q.admit(10).unwrap();
        let waiter = {
            let q = q.clone();
            thread::spawn(move || q.admit(10))
        };
        thread::sleep(Duration::from_millis(30));
        q.close();
        let err = waiter.join().unwrap().expect_err("admission on a closed queue fails");
        assert_eq!(err.category(), "cancelled");
    }

    #[test]
    fn queue_placement_is_recorded() {
        let q = BlockQueue::bounded(1, 4).on_node(MemoryNodeId::new(3));
        assert_eq!(q.node(), Some(MemoryNodeId::new(3)));
        // Clones share the placement.
        assert_eq!(q.clone().node(), Some(MemoryNodeId::new(3)));
        assert_eq!(BlockQueue::new(1).node(), None);
    }

    #[test]
    fn panicking_producer_does_not_deadlock_the_consumer() {
        // Regression test: without the guard's Drop signal, the consumer
        // would block in pop() forever after the producer panics before
        // calling producer_done().
        let q = BlockQueue::new(0);
        let guard = q.register_producer();
        let producer = thread::spawn(move || {
            guard.push(handle(1)).unwrap();
            panic!("producer died before producer_done()");
        });
        assert!(producer.join().is_err());
        // The panicked producer's guard signalled completion during unwind:
        // the consumer sees the pushed block, then clean termination.
        assert!(q.pop().is_some());
        assert!(q.pop().is_none());
    }

    #[test]
    fn producer_guard_done_signals_exactly_once() {
        let q = BlockQueue::new(0);
        let g1 = q.register_producer();
        let g2 = q.register_producer();
        g1.push(handle(1)).unwrap();
        g1.done();
        assert!(q.pop().is_some());
        drop(g2);
        assert!(q.pop().is_none());
    }

    #[test]
    fn steal_takes_the_tail_and_preserves_fifo_for_the_victim() {
        let q = BlockQueue::new(1);
        for i in 0..4 {
            q.push(handle(i)).unwrap();
        }
        // The thief gets the newest block …
        assert_eq!(q.steal().unwrap().meta().id, BlockId::new(3));
        assert_eq!(q.len(), 3);
        // … and the victim's pop order is untouched at the head.
        assert_eq!(q.pop().unwrap().meta().id, BlockId::new(0));
        assert_eq!(q.steal().unwrap().meta().id, BlockId::new(2));
        assert_eq!(q.pop().unwrap().meta().id, BlockId::new(1));
        assert!(q.steal().is_none(), "an empty queue has nothing to steal");
    }

    #[test]
    fn steal_never_consumes_completion_signals() {
        let q = BlockQueue::new(1);
        q.push(handle(1)).unwrap();
        q.producer_done().unwrap();
        assert!(q.steal().is_some());
        // The completion survived the theft: the consumer terminates cleanly.
        assert!(q.pop().is_none());
    }

    #[test]
    fn steal_on_a_closed_queue_returns_nothing() {
        let q = BlockQueue::new(1);
        q.push(handle(1)).unwrap();
        q.close();
        assert!(q.steal().is_none(), "poisoned backlogs must not be resurrected by thieves");
    }

    #[test]
    fn steal_unblocks_a_producer_parked_on_a_full_queue() {
        let q = BlockQueue::bounded(1, 1);
        q.push(handle(0)).unwrap();
        let producer = {
            let q = q.clone();
            thread::spawn(move || q.push(handle(1)))
        };
        thread::sleep(Duration::from_millis(30));
        assert!(q.steal().is_some());
        assert!(producer.join().unwrap().is_ok(), "theft must free a slot for parked producers");
    }

    #[test]
    fn give_back_returns_a_block_without_blocking_even_at_capacity() {
        let q = BlockQueue::bounded(1, 1);
        q.push(handle(0)).unwrap();
        let popped = q.pop().unwrap();
        // A producer refills the freed slot before the give-back.
        q.push(handle(1)).unwrap();
        // give_back must not park: the buffer transiently holds cap+1 blocks.
        q.give_back(popped).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap().meta().id, BlockId::new(1));
        assert_eq!(q.pop().unwrap().meta().id, BlockId::new(0));
        // On a closed queue the give-back is refused (the block must drop).
        q.close();
        assert!(q.give_back(handle(2)).is_err());
    }

    #[test]
    fn try_pop_distinguishes_empty_from_finished() {
        let q = BlockQueue::new(1);
        assert!(matches!(q.try_pop(), PopNext::Empty));
        q.push(handle(1)).unwrap();
        assert!(matches!(q.try_pop(), PopNext::Block(_)));
        q.producer_done().unwrap();
        assert!(matches!(q.try_pop(), PopNext::Finished));
        // pop_timeout waits for a late block instead of reporting Empty.
        let q2 = BlockQueue::new(1);
        let pusher = {
            let q2 = q2.clone();
            thread::spawn(move || {
                thread::sleep(Duration::from_millis(20));
                q2.push(handle(7)).unwrap();
            })
        };
        match q2.pop_timeout(Duration::from_secs(2)) {
            PopNext::Block(h) => assert_eq!(h.meta().id, BlockId::new(7)),
            other => panic!("expected a block, got {other:?}"),
        }
        pusher.join().unwrap();
        // A closed queue reports Finished immediately.
        q2.close();
        assert!(matches!(q2.pop_timeout(Duration::from_millis(1)), PopNext::Finished));
    }

    #[test]
    fn concurrent_pop_and_steal_consume_each_block_exactly_once() {
        let q = BlockQueue::new(1);
        let total = 500usize;
        let consumer = {
            let q = q.clone();
            thread::spawn(move || {
                let mut ids = Vec::new();
                while let Some(h) = q.pop() {
                    ids.push(h.meta().id.index());
                }
                ids
            })
        };
        let stop = Arc::new(AtomicBool::new(false));
        let thief = {
            let q = q.clone();
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut ids = Vec::new();
                loop {
                    if let Some(h) = q.steal() {
                        ids.push(h.meta().id.index());
                    } else if stop.load(Ordering::SeqCst) {
                        break;
                    } else {
                        thread::yield_now();
                    }
                }
                ids
            })
        };
        for i in 0..total {
            q.push(handle(i)).unwrap();
        }
        q.producer_done().unwrap();
        let mut seen: Vec<usize> = consumer.join().unwrap();
        stop.store(true, Ordering::SeqCst);
        let stolen = thief.join().unwrap();
        seen.extend(stolen);
        seen.sort_unstable();
        assert_eq!(seen, (0..total).collect::<Vec<_>>(), "every block exactly once");
    }
}
