//! The mem-move operator: data-flow between memory nodes.
//!
//! §3.2: mem-move "is responsible for moving data between node-local memory of
//! producers and consumers … In case the data are already local to the
//! consumer, it only forwards the block handle, without doing any data
//! transfers." Its producer half schedules asynchronous DMA transfers and
//! returns immediately; its consumer half waits for the transfer to finish.
//! In this reproduction the asynchrony is expressed on the simulated timeline:
//! the relocated handle carries the transfer's completion time in
//! `ready_at_ns`, and whichever worker consumes it cannot start earlier — the
//! same "wait for the transfer you were told about" contract as the paper's
//! generated pipelines 10/11 (Listing 1).
//!
//! Mem-move also owns broadcasting (multicast): one copy of the block is
//! produced per target, each tagged with its broadcast target id so that a
//! `Target` router can fan the copies out without understanding broadcasts.

use hetex_common::{BlockHandle, MemoryNodeId, Result};
use hetex_topology::{DmaEngine, SimTime};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counters describing a mem-move's activity over a query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemMoveStats {
    /// Handles forwarded without a transfer (data already local).
    pub forwarded: u64,
    /// Handles whose data was moved by DMA.
    pub transferred: u64,
    /// Broadcast copies produced.
    pub broadcast_copies: u64,
}

/// The runtime mem-move operator.
#[derive(Debug)]
pub struct MemMove {
    dma: DmaEngine,
    forwarded: AtomicU64,
    transferred: AtomicU64,
    broadcast_copies: AtomicU64,
}

impl MemMove {
    /// A mem-move scheduling transfers on the given DMA engine.
    pub fn new(dma: DmaEngine) -> Self {
        Self {
            dma,
            forwarded: AtomicU64::new(0),
            transferred: AtomicU64::new(0),
            broadcast_copies: AtomicU64::new(0),
        }
    }

    /// The DMA engine used by this operator.
    pub fn dma(&self) -> &DmaEngine {
        &self.dma
    }

    /// Make `handle`'s data available on `target`.
    ///
    /// If the block already lives there, the handle is forwarded untouched
    /// (apart from its location being confirmed). Otherwise an asynchronous
    /// DMA transfer is scheduled, and the returned handle's `ready_at_ns` is
    /// the transfer's completion time.
    pub fn relocate(&self, handle: &BlockHandle, target: MemoryNodeId) -> Result<BlockHandle> {
        let meta = handle.meta();
        if meta.location == target {
            self.forwarded.fetch_add(1, Ordering::Relaxed);
            return Ok(handle.clone());
        }
        let ticket = self.dma.schedule(
            handle.weighted_bytes(),
            meta.location,
            target,
            SimTime::from_nanos(meta.ready_at_ns),
        )?;
        self.transferred.fetch_add(1, Ordering::Relaxed);
        Ok(handle.relocated(target, ticket.completes_at.as_nanos()))
    }

    /// Broadcast `handle` to every node in `targets`, producing one tagged
    /// copy per target (tag = index into `targets`). Targets that already hold
    /// the data get a forwarded handle with no transfer.
    pub fn broadcast(
        &self,
        handle: &BlockHandle,
        targets: &[MemoryNodeId],
    ) -> Result<Vec<BlockHandle>> {
        let mut out = Vec::with_capacity(targets.len());
        for (idx, &target) in targets.iter().enumerate() {
            let mut copy = self.relocate(handle, target)?;
            copy.meta_mut().broadcast_target = Some(idx);
            self.broadcast_copies.fetch_add(1, Ordering::Relaxed);
            out.push(copy);
        }
        Ok(out)
    }

    /// Activity counters.
    pub fn stats(&self) -> MemMoveStats {
        MemMoveStats {
            forwarded: self.forwarded.load(Ordering::Relaxed),
            transferred: self.transferred.load(Ordering::Relaxed),
            broadcast_copies: self.broadcast_copies.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetex_common::{Block, BlockId, BlockMeta, ColumnData};
    use hetex_topology::ServerTopology;
    use std::sync::Arc;

    fn mem_move() -> MemMove {
        MemMove::new(DmaEngine::new(ServerTopology::paper_server()))
    }

    fn handle_on(node: usize, rows: usize) -> BlockHandle {
        let block = Block::new(vec![ColumnData::Int64(vec![7; rows])], rows).unwrap();
        BlockHandle::new(block, BlockMeta::new(BlockId::new(0), MemoryNodeId::new(node)))
    }

    #[test]
    fn local_blocks_are_forwarded_without_transfer() {
        let mm = mem_move();
        let h = handle_on(0, 100);
        let out = mm.relocate(&h, MemoryNodeId::new(0)).unwrap();
        assert_eq!(out.meta().location, MemoryNodeId::new(0));
        assert_eq!(out.meta().ready_at_ns, 0);
        assert_eq!(mm.stats().forwarded, 1);
        assert_eq!(mm.stats().transferred, 0);
        assert_eq!(mm.dma().stats().transfers, 0);
    }

    #[test]
    fn remote_blocks_get_a_completion_time() {
        let mm = mem_move();
        let h = handle_on(0, 1 << 20); // 8 MiB of i64s
        let out = mm.relocate(&h, MemoryNodeId::new(2)).unwrap();
        assert_eq!(out.meta().location, MemoryNodeId::new(2));
        assert!(out.meta().ready_at_ns > 0, "DMA must take simulated time");
        assert_eq!(mm.stats().transferred, 1);
        // Underlying data is shared, not copied.
        assert!(Arc::ptr_eq(&h.shared(), &out.shared()));
    }

    #[test]
    fn transfers_respect_input_readiness() {
        let mm = mem_move();
        let mut h = handle_on(0, 1000);
        h.meta_mut().ready_at_ns = 5_000_000;
        let out = mm.relocate(&h, MemoryNodeId::new(2)).unwrap();
        assert!(out.meta().ready_at_ns > 5_000_000);
    }

    #[test]
    fn weighted_blocks_take_proportionally_longer() {
        let mm = mem_move();
        let light = mm.relocate(&handle_on(0, 100_000), MemoryNodeId::new(2)).unwrap();
        mm.dma().topology().reset_clocks();
        let mut heavy_handle = handle_on(0, 100_000);
        heavy_handle.meta_mut().weight = 10.0;
        let heavy = mm.relocate(&heavy_handle, MemoryNodeId::new(2)).unwrap();
        assert!(heavy.meta().ready_at_ns > 5 * light.meta().ready_at_ns);
    }

    #[test]
    fn broadcast_tags_each_copy_with_its_target() {
        let mm = mem_move();
        let h = handle_on(0, 1000);
        let targets = [MemoryNodeId::new(2), MemoryNodeId::new(3), MemoryNodeId::new(0)];
        let copies = mm.broadcast(&h, &targets).unwrap();
        assert_eq!(copies.len(), 3);
        for (i, copy) in copies.iter().enumerate() {
            assert_eq!(copy.meta().broadcast_target, Some(i));
            assert_eq!(copy.meta().location, targets[i]);
        }
        // The copy staying on the source node needed no transfer.
        assert_eq!(copies[2].meta().ready_at_ns, 0);
        assert_eq!(mm.stats().broadcast_copies, 3);
        assert_eq!(mm.stats().transferred, 2);
        assert_eq!(mm.stats().forwarded, 1);
    }
}
