//! Code generation: from a heterogeneity-aware plan to a stage graph of
//! compiled pipelines.
//!
//! The traversal is the classic produce()/consume() scheme of §4.1: relational
//! operators append fused steps to the pipeline being generated, HetExchange
//! operators break pipelines and carry the *edge attributes* between them —
//! which routing policy distributes blocks, which devices the consumer is
//! instantiated on (and with what affinities), whether a mem-move localizes or
//! broadcasts the blocks. Because the router generates "a parameterizable
//! version of the pipeline per device" (§4.2), a stage holds one compiled
//! pipeline *template per device type* and the executor instantiates them.

use crate::plan::{DeviceTarget, HetNode, RouterPolicy};
use crate::router::{ConsumerSlot, Router};
use hetex_common::{EngineConfig, HetError, PipelineId, Result};
use hetex_jit::{
    CodegenContext, CompiledPipeline, Expr, SharedState, StateSlot, Step, TerminalStep,
};
use hetex_topology::{DeviceKind, ServerTopology};
use std::collections::HashMap;
use std::sync::Arc;

/// How incoming blocks are localized before an instance consumes them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemMoveMode {
    /// No mem-move on this edge (blocks are consumed wherever they are).
    None,
    /// Move each block to the consuming instance's local memory node.
    ToInstance,
    /// Additionally broadcast each block to every GPU memory node (build-side
    /// dimension data for broadcast hash joins).
    Broadcast,
}

/// Where a stage's input blocks come from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StageSource {
    /// A base-table scan produced by the segmenter.
    Table { table: String, projection: Vec<String> },
    /// The output blocks of an earlier stage.
    Stage(usize),
}

/// One stage: a set of pipeline instances fed by a router.
#[derive(Debug)]
pub struct Stage {
    /// Per-device-type pipeline templates (at least one entry).
    pub templates: HashMap<DeviceKind, CompiledPipeline>,
    /// Input blocks.
    pub source: StageSource,
    /// Consumer instances (device type + affinity), as planned by the router.
    pub consumers: Vec<ConsumerSlot>,
    /// Routing policy distributing input blocks over the consumers.
    pub policy: RouterPolicy,
    /// Whether a router operator is actually present (affects the ~10 ms
    /// router-initialization overhead of §6.4).
    pub has_router: bool,
    /// Mem-move behaviour on the stage's input edge.
    pub mem_move: MemMoveMode,
    /// Stages whose shared state (join hash tables) this stage's pipeline
    /// probes; they must complete before this stage starts.
    pub depends_on: Vec<usize>,
    /// True for the stage whose terminal state holds the query result.
    pub is_result: bool,
}

impl Stage {
    /// The pipeline template for a device kind (falling back to any template —
    /// a stage always has at least one).
    pub fn template(&self, kind: DeviceKind) -> &CompiledPipeline {
        self.templates
            .get(&kind)
            .or_else(|| self.templates.values().next())
            .expect("stage has at least one pipeline template")
    }

    /// Output width of the stage's pipelines.
    pub fn output_width(&self) -> usize {
        self.template(DeviceKind::CpuCore).terminal().output_width()
    }
}

/// Explicit producer → consumer wiring of a stage graph, computed at compile
/// time so the pipelined executor can create its queues and dependency gates
/// without re-deriving the topology of the graph.
#[derive(Debug, Clone, Default)]
pub struct StageWiring {
    /// `feeds[i] = Some(j)` when stage `j` consumes stage `i`'s output blocks
    /// (the executor wires one queue per consumer slot of `j`, and stage `i`
    /// registers as their producer). `None` for sink stages.
    pub feeds: Vec<Option<usize>>,
    /// `unlocks[i]` = stages whose dependency gate opens (partially) when
    /// stage `i` completes — the inverse of `Stage::depends_on`.
    pub unlocks: Vec<Vec<usize>>,
}

impl StageWiring {
    /// Derive the wiring from compiled stages. Fails if two stages claim the
    /// same producer (plans are trees, so each stage feeds at most one).
    fn derive(stages: &[Stage]) -> Result<Self> {
        let mut feeds: Vec<Option<usize>> = vec![None; stages.len()];
        let mut unlocks: Vec<Vec<usize>> = vec![Vec::new(); stages.len()];
        for (idx, stage) in stages.iter().enumerate() {
            if let StageSource::Stage(src) = stage.source {
                if src >= stages.len() {
                    return Err(HetError::Codegen(format!(
                        "stage {idx} consumes unknown stage {src}"
                    )));
                }
                if let Some(prev) = feeds[src] {
                    return Err(HetError::Codegen(format!(
                        "stage {src} feeds both stage {prev} and stage {idx}"
                    )));
                }
                feeds[src] = Some(idx);
            }
            for &dep in &stage.depends_on {
                if dep >= stages.len() {
                    return Err(HetError::Codegen(format!(
                        "stage {idx} depends on unknown stage {dep}"
                    )));
                }
                unlocks[dep].push(idx);
            }
        }
        Ok(Self { feeds, unlocks })
    }
}

/// The compiled query: stages in execution order plus the shared state.
#[derive(Debug)]
pub struct StageGraph {
    /// Stages in a valid execution order (builds before probes).
    pub stages: Vec<Stage>,
    /// Shared state (hash tables, accumulators, group-by tables).
    pub state: SharedState,
    /// Producer → consumer wiring used by the pipelined executor.
    pub wiring: StageWiring,
}

impl StageGraph {
    /// Index of the result stage.
    pub fn result_stage(&self) -> Result<usize> {
        self.stages
            .iter()
            .position(|s| s.is_result)
            .ok_or_else(|| HetError::Codegen("plan has no result stage".into()))
    }

    /// Total number of pipeline templates generated.
    pub fn pipeline_count(&self) -> usize {
        self.stages.iter().map(|s| s.templates.len()).sum()
    }
}

/// Compile a heterogeneity-aware plan into a stage graph.
pub fn compile(
    plan: &HetNode,
    config: &EngineConfig,
    topology: &Arc<ServerTopology>,
) -> Result<StageGraph> {
    let mut cg = Codegen {
        ctx: CodegenContext::new(),
        stages: Vec::new(),
        config,
        topology,
        build_stage_of_slot: HashMap::new(),
        next_pipeline: 1000,
        core_offset: 0,
    };

    // Strip the result-gathering wrapper (union router / gpu2cpu above the
    // root aggregation): results are collected from shared state by the
    // executor's single result-collection step.
    let mut root = plan;
    loop {
        match root {
            HetNode::Router { input, policy: RouterPolicy::Union, .. } => root = input,
            HetNode::Gpu2Cpu { input } => root = input,
            _ => break,
        }
    }

    let result_stage = cg.compile_stage(root, true)?;
    cg.stages[result_stage].is_result = true;
    let (_pipelines, state) = cg.ctx.seal()?;
    let wiring = StageWiring::derive(&cg.stages)?;
    Ok(StageGraph { stages: cg.stages, state, wiring })
}

/// Edge attributes gathered while descending an input chain.
#[derive(Debug, Default, Clone)]
struct EdgeAttrs {
    policy: Option<RouterPolicy>,
    targets: Option<Vec<DeviceTarget>>,
    mem_move: Option<MemMoveMode>,
    crosses_to_gpu: bool,
}

struct Codegen<'a> {
    ctx: CodegenContext,
    stages: Vec<Stage>,
    config: &'a EngineConfig,
    topology: &'a Arc<ServerTopology>,
    /// Which stage builds each hash-table slot.
    build_stage_of_slot: HashMap<usize, usize>,
    next_pipeline: usize,
    /// Running count of planned CPU instances: each stage's consumers are
    /// staggered past the previous stages' so concurrently running pipelines
    /// land on disjoint cores when the topology has enough.
    core_offset: usize,
}

impl<'a> Codegen<'a> {
    /// Compile the subtree rooted at a pipeline-terminal node (pack, reduce,
    /// group-by) into a stage; returns its index.
    fn compile_stage(&mut self, node: &HetNode, is_result: bool) -> Result<usize> {
        let (terminal, body) = match node {
            HetNode::Pack { input, hash_partitions } => {
                let width = self.walk_body(input)?;
                let exprs: Vec<Expr> = (0..width.width).map(Expr::col).collect();
                (
                    TerminalStep::Pack {
                        exprs,
                        partition_by: hash_partitions.map(|_| Expr::Hash(Box::new(Expr::col(0)))),
                        partitions: hash_partitions.unwrap_or(1),
                    },
                    width,
                )
            }
            HetNode::Reduce { input, aggs, .. } => {
                let body = self.walk_body(input)?;
                let slot = self.ctx.add_accumulators(aggs);
                (TerminalStep::Reduce { aggs: aggs.clone(), slot }, body)
            }
            HetNode::GroupBy { input, keys, aggs, .. } => {
                let body = self.walk_body(input)?;
                let slot = self.ctx.add_group_by(aggs);
                (
                    TerminalStep::GroupBy {
                        keys: keys.iter().map(|&k| Expr::col(k)).collect(),
                        aggs: aggs.clone(),
                        slot,
                    },
                    body,
                )
            }
            other => {
                return Err(HetError::Codegen(format!(
                    "expected a pipeline-terminal operator at a stage root, found {other:?}"
                )))
            }
        };
        let _ = is_result;
        self.seal_stage(terminal, body)
    }

    /// Walk the relational body of a pipeline (filters, projections, probes)
    /// down to its input chain; returns the open pipeline's body description.
    fn walk_body(&mut self, node: &HetNode) -> Result<OpenBody> {
        match node {
            HetNode::Filter { input, predicate } => {
                let mut body = self.walk_body(input)?;
                self.ctx.push_step(Step::Filter { predicate: predicate.clone() })?;
                body.width = self.ctx.current_width()?;
                Ok(body)
            }
            HetNode::Project { input, exprs, .. } => {
                let mut body = self.walk_body(input)?;
                self.ctx.push_step(Step::Map { exprs: exprs.clone() })?;
                body.width = self.ctx.current_width()?;
                Ok(body)
            }
            HetNode::HashJoin { build, probe, build_key, probe_key, payload } => {
                // Compile the entire build side first: it becomes one or more
                // stages ending in a HashJoinBuild terminal.
                let (slot, build_stage) = self.compile_build_side(build, *build_key, payload)?;
                // Then continue with the probe side in the current pipeline.
                let mut body = self.walk_body(probe)?;
                self.ctx.push_step(Step::HashJoinProbe {
                    key: Expr::col(*probe_key),
                    slot,
                    payload_width: payload.len(),
                })?;
                body.width = self.ctx.current_width()?;
                body.depends_on.push(build_stage);
                Ok(body)
            }
            // Input-chain operators: this is where the pipeline begins.
            HetNode::Unpack { .. }
            | HetNode::MemMove { .. }
            | HetNode::Cpu2Gpu { .. }
            | HetNode::Gpu2Cpu { .. }
            | HetNode::Router { .. }
            | HetNode::Segmenter { .. } => self.open_pipeline_from_chain(node),
            HetNode::Pack { .. } | HetNode::Reduce { .. } | HetNode::GroupBy { .. } => {
                Err(HetError::Codegen(
                    "nested pipeline terminal encountered inside a pipeline body".into(),
                ))
            }
        }
    }

    /// Descend an input chain (unpack / mem-move / crossings / router /
    /// segmenter or an upstream packed stage), record the edge attributes and
    /// open the new pipeline.
    fn open_pipeline_from_chain(&mut self, node: &HetNode) -> Result<OpenBody> {
        let mut attrs = EdgeAttrs::default();
        let mut cursor = node;
        let (source, width) = loop {
            match cursor {
                HetNode::Unpack { input } => cursor = input,
                HetNode::MemMove { input, broadcast } => {
                    attrs.mem_move = Some(if *broadcast {
                        MemMoveMode::Broadcast
                    } else {
                        MemMoveMode::ToInstance
                    });
                    cursor = input;
                }
                HetNode::Cpu2Gpu { input } => {
                    attrs.crosses_to_gpu = true;
                    cursor = input;
                }
                HetNode::Gpu2Cpu { input } => cursor = input,
                HetNode::Router { input, policy, targets } => {
                    attrs.policy = Some(*policy);
                    attrs.targets = Some(targets.clone());
                    cursor = input;
                }
                HetNode::Segmenter { table, projection } => {
                    break (
                        StageSource::Table { table: table.clone(), projection: projection.clone() },
                        projection.len(),
                    );
                }
                packed @ (HetNode::Pack { .. }
                | HetNode::Reduce { .. }
                | HetNode::GroupBy { .. }) => {
                    let stage = self.compile_stage(packed, false)?;
                    let width = self.stages[stage].output_width();
                    // Upstream packed stages feed blocks, not state;
                    // consuming them does not require a dependency gate —
                    // blocks flow through the queue as they are produced.
                    break (StageSource::Stage(stage), width);
                }
                other => {
                    return Err(HetError::Codegen(format!(
                        "unexpected operator in an input chain: {other:?}"
                    )))
                }
            }
        };
        self.ctx.begin_pipeline(DeviceKind::CpuCore, width)?;
        Ok(OpenBody { source, width, attrs, depends_on: Vec::new() })
    }

    /// Compile the build side of a hash join into its stages and register the
    /// hash-table slot. Returns `(slot, build_stage_index)`.
    fn compile_build_side(
        &mut self,
        build: &HetNode,
        build_key: usize,
        payload: &[usize],
    ) -> Result<(StateSlot, usize)> {
        let slot = self.ctx.add_hash_table(payload.len());
        // The build subtree produced by the parallelizer is
        // Unpack(MemMove(Pack(...))) — an input chain over a packed stage.
        let body = self.open_pipeline_from_chain(build)?;
        let terminal = TerminalStep::HashJoinBuild {
            key: Expr::col(build_key),
            payload: payload.iter().map(|&p| Expr::col(p)).collect(),
            slot,
        };
        let stage = self.seal_stage(terminal, body)?;
        self.build_stage_of_slot.insert(slot.index(), stage);
        Ok((slot, stage))
    }

    /// Seal the currently open pipeline into a stage.
    fn seal_stage(&mut self, terminal: TerminalStep, body: OpenBody) -> Result<usize> {
        let primary = self.ctx.finish_pipeline(terminal)?;
        let primary = self.ctx.pipeline(primary)?.clone();

        // Resolve the consumer instances from the router targets (or a single
        // sequential CPU/GPU instance when no router is present).
        let targets = body.attrs.targets.clone().unwrap_or_else(|| {
            if body.attrs.crosses_to_gpu {
                vec![DeviceTarget::gpu(1)]
            } else {
                vec![DeviceTarget::cpu(1)]
            }
        });
        let consumers = Router::plan_consumers_offset(&targets, self.topology, self.core_offset)?;
        self.core_offset += consumers.iter().filter(|c| c.kind == DeviceKind::CpuCore).count();

        // Build one template per device kind appearing in the consumers
        // (§4.2: a parameterizable pipeline per device, not per thread).
        let mut templates = HashMap::new();
        for kind in consumers.iter().map(|c| c.kind) {
            if templates.contains_key(&kind) {
                continue;
            }
            let pipeline = if kind == primary.device() {
                primary.clone()
            } else {
                self.next_pipeline += 1;
                CompiledPipeline::new(
                    PipelineId::new(self.next_pipeline),
                    kind,
                    primary.input_width(),
                    primary.steps().to_vec(),
                    primary.terminal().clone(),
                )?
            };
            templates.insert(kind, pipeline);
        }

        let mut depends_on = body.depends_on;
        depends_on.sort_unstable();
        depends_on.dedup();

        let stage = Stage {
            templates,
            source: body.source,
            consumers,
            policy: body.attrs.policy.unwrap_or(RouterPolicy::RoundRobin),
            has_router: body.attrs.policy.is_some() && self.config.hetexchange_enabled,
            mem_move: body.attrs.mem_move.unwrap_or(MemMoveMode::None),
            depends_on,
            is_result: false,
        };
        self.stages.push(stage);
        Ok(self.stages.len() - 1)
    }
}

/// Description of a pipeline body while it is still open in the codegen
/// context.
#[derive(Debug)]
struct OpenBody {
    source: StageSource,
    width: usize,
    attrs: EdgeAttrs,
    depends_on: Vec<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parallelize, RelNode};
    use hetex_jit::AggSpec;

    fn ssb_like_plan() -> RelNode {
        let dates = RelNode::scan("date", &["d_datekey", "d_year"])
            .filter(Expr::col(1).eq(Expr::lit(1993)));
        RelNode::scan("lineorder", &["lo_orderdate", "lo_discount", "lo_revenue"])
            .filter(Expr::col(1).between(1, 3))
            .hash_join(dates, 0, 0, &[1])
            .reduce(vec![AggSpec::sum(Expr::col(2))], &["revenue"])
    }

    fn compile_for(config: &EngineConfig) -> StageGraph {
        let topology = ServerTopology::paper_server();
        let het = parallelize(&ssb_like_plan(), config).unwrap();
        compile(&het, config, &topology).unwrap()
    }

    #[test]
    fn hybrid_query_produces_build_and_probe_stages() {
        let graph = compile_for(&EngineConfig::hybrid(8, 2));
        // Stage 0: dimension scan+filter+pack; stage 1: hash build;
        // stage 2: fact scan+filter+probe+reduce (the result stage).
        assert_eq!(graph.stages.len(), 3);
        assert_eq!(graph.result_stage().unwrap(), 2);
        assert!(matches!(graph.stages[0].source, StageSource::Table { .. }));
        assert_eq!(graph.stages[1].source, StageSource::Stage(0));
        assert!(matches!(graph.stages[2].source, StageSource::Table { .. }));
        // The probe stage depends on the build stage's completion.
        assert_eq!(graph.stages[2].depends_on, vec![1]);
        // Shared state: one hash table + one accumulator set.
        assert_eq!(graph.state.len(), 2);
    }

    #[test]
    fn hybrid_result_stage_has_cpu_and_gpu_templates() {
        let graph = compile_for(&EngineConfig::hybrid(8, 2));
        let result = &graph.stages[2];
        assert!(result.templates.contains_key(&DeviceKind::CpuCore));
        assert!(result.templates.contains_key(&DeviceKind::Gpu));
        assert_eq!(result.consumers.len(), 10);
        assert_eq!(result.policy, RouterPolicy::LeastLoaded);
        assert!(result.has_router);
        assert_eq!(result.mem_move, MemMoveMode::ToInstance);
        // Both templates share the same blueprint.
        let cpu = result.template(DeviceKind::CpuCore);
        let gpu = result.template(DeviceKind::Gpu);
        assert_eq!(cpu.steps(), gpu.steps());
        assert_eq!(cpu.terminal(), gpu.terminal());
        assert_ne!(cpu.device(), gpu.device());
    }

    #[test]
    fn build_side_broadcasts_only_when_gpus_participate() {
        let hybrid = compile_for(&EngineConfig::hybrid(8, 2));
        assert_eq!(hybrid.stages[1].mem_move, MemMoveMode::Broadcast);
        let cpu_only = compile_for(&EngineConfig::cpu_only(8));
        assert_eq!(cpu_only.stages[1].mem_move, MemMoveMode::ToInstance);
        // CPU-only plans never generate GPU templates.
        assert!(cpu_only.stages.iter().all(|s| !s.templates.contains_key(&DeviceKind::Gpu)));
    }

    #[test]
    fn gpu_only_main_stage_runs_on_gpus() {
        let graph = compile_for(&EngineConfig::gpu_only(2));
        let result = &graph.stages[graph.result_stage().unwrap()];
        assert!(result.consumers.iter().all(|c| c.kind == DeviceKind::Gpu));
        assert_eq!(result.consumers.len(), 2);
        assert!(result.templates.contains_key(&DeviceKind::Gpu));
    }

    #[test]
    fn disabled_hetexchange_is_sequential_without_routers() {
        let mut config = EngineConfig::cpu_only(1);
        config.hetexchange_enabled = false;
        let graph = compile_for(&config);
        for stage in &graph.stages {
            assert!(!stage.has_router);
            assert_eq!(stage.consumers.len(), 1);
        }
    }

    #[test]
    fn pipeline_count_matches_templates() {
        let graph = compile_for(&EngineConfig::hybrid(4, 1));
        assert!(graph.pipeline_count() >= graph.stages.len());
    }

    #[test]
    fn wiring_connects_producers_to_consumers_and_inverts_gates() {
        let graph = compile_for(&EngineConfig::hybrid(8, 2));
        // Stage 0 (dimension scan) feeds stage 1 (hash build); the probe
        // stage (2) reads a base table, so nothing feeds it and it feeds
        // no-one (it is the result sink).
        assert_eq!(graph.wiring.feeds, vec![Some(1), None, None]);
        // Build completion unlocks the probe stage's gate.
        assert_eq!(graph.wiring.unlocks[1], vec![2]);
        assert!(graph.wiring.unlocks[0].is_empty());
        assert!(graph.wiring.unlocks[2].is_empty());
    }
}
