//! Plan representations.
//!
//! [`RelNode`] is the *device-agnostic physical plan* a conventional optimizer
//! produces (Figure 1a / 2a): scans, filters, projections, hash joins and
//! aggregations, with no notion of devices, parallelism or data movement.
//!
//! [`HetNode`] is the *heterogeneity-aware plan* (Figure 1e / 2b): the same
//! relational operators plus the four HetExchange operator families —
//! `router`, the device-crossing pair `cpu2gpu`/`gpu2cpu`, `mem-move`, and
//! `pack`/`unpack` — inserted by the [`crate::parallelizer`].
//!
//! Columns are positional: every node's output is an ordered list of named
//! columns, and expressions reference their input node's columns by index.
//! [`RelNode::output_names`] / [`HetNode::output_names`] give the mapping that
//! query authors (the SSB crate) use to resolve names to indexes.

use hetex_jit::{AggSpec, Expr};
use hetex_topology::DeviceKind;
use std::fmt;

/// Routing policies of the router operator (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterPolicy {
    /// Round-robin / range partitioning of blocks over consumers.
    RoundRobin,
    /// Route each block to the currently least-loaded consumer; this is the
    /// load-balancing behaviour the hybrid plans rely on.
    LeastLoaded,
    /// Route by the block's hash-partition tag (set by hash-pack); blocks are
    /// never inspected, only their handles.
    Hash,
    /// Route by the block's broadcast-target tag (set by a multicasting
    /// mem-move).
    Target,
    /// Merge the outputs of many producers into a single consumer.
    Union,
}

impl fmt::Display for RouterPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RouterPolicy::RoundRobin => "round-robin",
            RouterPolicy::LeastLoaded => "least-loaded",
            RouterPolicy::Hash => "hash",
            RouterPolicy::Target => "target",
            RouterPolicy::Union => "union",
        };
        f.write_str(s)
    }
}

/// One group of consumer instances a router fans out to: a device kind and
/// the number of instances on that kind. A hybrid router has one target per
/// device type — the "multiple parents" of §3.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceTarget {
    /// The device type of the instances.
    pub kind: DeviceKind,
    /// How many instances are created on that device type.
    pub dop: usize,
}

impl DeviceTarget {
    /// `dop` CPU-core instances.
    pub fn cpu(dop: usize) -> Self {
        Self { kind: DeviceKind::CpuCore, dop }
    }

    /// `dop` GPU instances.
    pub fn gpu(dop: usize) -> Self {
        Self { kind: DeviceKind::Gpu, dop }
    }
}

/// The device-agnostic physical plan.
#[derive(Debug, Clone, PartialEq)]
pub enum RelNode {
    /// Sequential scan of a loaded table, materializing only `projection`.
    Scan { table: String, projection: Vec<String> },
    /// Filter by a predicate over the input's columns.
    Filter { input: Box<RelNode>, predicate: Expr },
    /// Projection / derived columns.
    Project { input: Box<RelNode>, exprs: Vec<Expr>, names: Vec<String> },
    /// Hash equi-join. `build_key`/`probe_key` index the respective inputs'
    /// columns; `payload` lists build-side columns appended to probe tuples.
    HashJoin {
        build: Box<RelNode>,
        probe: Box<RelNode>,
        build_key: usize,
        probe_key: usize,
        payload: Vec<usize>,
    },
    /// Ungrouped aggregation producing exactly one row.
    Reduce { input: Box<RelNode>, aggs: Vec<AggSpec>, names: Vec<String> },
    /// Grouped aggregation.
    GroupBy { input: Box<RelNode>, keys: Vec<usize>, aggs: Vec<AggSpec>, names: Vec<String> },
}

impl RelNode {
    /// Convenience constructor for a scan.
    pub fn scan(table: impl Into<String>, projection: &[&str]) -> RelNode {
        RelNode::Scan {
            table: table.into(),
            projection: projection.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Wrap this node in a filter.
    pub fn filter(self, predicate: Expr) -> RelNode {
        RelNode::Filter { input: Box::new(self), predicate }
    }

    /// Join this node (as probe side) with a build side.
    pub fn hash_join(
        self,
        build: RelNode,
        probe_key: usize,
        build_key: usize,
        payload: &[usize],
    ) -> RelNode {
        RelNode::HashJoin {
            build: Box::new(build),
            probe: Box::new(self),
            build_key,
            probe_key,
            payload: payload.to_vec(),
        }
    }

    /// Reduce this node to a single aggregated row.
    pub fn reduce(self, aggs: Vec<AggSpec>, names: &[&str]) -> RelNode {
        RelNode::Reduce {
            input: Box::new(self),
            aggs,
            names: names.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Group this node by key columns.
    pub fn group_by(self, keys: &[usize], aggs: Vec<AggSpec>, names: &[&str]) -> RelNode {
        RelNode::GroupBy {
            input: Box::new(self),
            keys: keys.to_vec(),
            aggs,
            names: names.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Names of this node's output columns, in order.
    pub fn output_names(&self) -> Vec<String> {
        match self {
            RelNode::Scan { projection, .. } => projection.clone(),
            RelNode::Filter { input, .. } => input.output_names(),
            RelNode::Project { names, .. } => names.clone(),
            RelNode::HashJoin { build, probe, payload, .. } => {
                let mut names = probe.output_names();
                let build_names = build.output_names();
                for &p in payload {
                    names
                        .push(build_names.get(p).cloned().unwrap_or_else(|| format!("payload{p}")));
                }
                names
            }
            RelNode::Reduce { names, .. } | RelNode::GroupBy { names, .. } => names.clone(),
        }
    }

    /// Number of output columns.
    pub fn output_width(&self) -> usize {
        match self {
            RelNode::GroupBy { keys, aggs, .. } => keys.len() + aggs.len(),
            RelNode::Reduce { aggs, .. } => aggs.len(),
            _ => self.output_names().len(),
        }
    }

    /// Index of an output column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.output_names().iter().position(|n| n == name)
    }

    /// Number of relational operators in the plan (for tests and EXPLAIN).
    pub fn node_count(&self) -> usize {
        1 + match self {
            RelNode::Scan { .. } => 0,
            RelNode::Filter { input, .. }
            | RelNode::Project { input, .. }
            | RelNode::Reduce { input, .. }
            | RelNode::GroupBy { input, .. } => input.node_count(),
            RelNode::HashJoin { build, probe, .. } => build.node_count() + probe.node_count(),
        }
    }

    /// Render an indented EXPLAIN-style representation.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0);
        out
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        match self {
            RelNode::Scan { table, projection } => {
                out.push_str(&format!("{pad}scan {table} [{}]\n", projection.join(", ")));
            }
            RelNode::Filter { input, .. } => {
                out.push_str(&format!("{pad}filter\n"));
                input.explain_into(out, depth + 1);
            }
            RelNode::Project { input, names, .. } => {
                out.push_str(&format!("{pad}project [{}]\n", names.join(", ")));
                input.explain_into(out, depth + 1);
            }
            RelNode::HashJoin { build, probe, .. } => {
                out.push_str(&format!("{pad}hash-join\n"));
                out.push_str(&format!("{pad}  build:\n"));
                build.explain_into(out, depth + 2);
                out.push_str(&format!("{pad}  probe:\n"));
                probe.explain_into(out, depth + 2);
            }
            RelNode::Reduce { input, names, .. } => {
                out.push_str(&format!("{pad}reduce [{}]\n", names.join(", ")));
                input.explain_into(out, depth + 1);
            }
            RelNode::GroupBy { input, names, .. } => {
                out.push_str(&format!("{pad}group-by [{}]\n", names.join(", ")));
                input.explain_into(out, depth + 1);
            }
        }
    }
}

/// The heterogeneity-aware plan: relational operators plus HetExchange
/// converters.
#[derive(Debug, Clone, PartialEq)]
pub enum HetNode {
    /// The single-threaded leaf that cuts a table into block-shaped partitions.
    Segmenter {
        table: String,
        projection: Vec<String>,
    },
    /// Control-flow: parallelism encapsulation.
    Router {
        input: Box<HetNode>,
        policy: RouterPolicy,
        targets: Vec<DeviceTarget>,
    },
    /// Control-flow: CPU → GPU crossing (kernel launches).
    Cpu2Gpu {
        input: Box<HetNode>,
    },
    /// Control-flow: GPU → CPU crossing (asynchronous queue + CPU-side part).
    Gpu2Cpu {
        input: Box<HetNode>,
    },
    /// Data-flow: make blocks local to their consumer, possibly broadcasting.
    MemMove {
        input: Box<HetNode>,
        broadcast: bool,
    },
    /// Data-flow: group tuples into blocks; `hash_partitions` makes it a
    /// hash-pack whose blocks are hash-homogeneous.
    Pack {
        input: Box<HetNode>,
        hash_partitions: Option<usize>,
    },
    /// Data-flow: feed a block's tuples one at a time to the next operator.
    Unpack {
        input: Box<HetNode>,
    },
    /// Relational operators (same semantics as in [`RelNode`]).
    Filter {
        input: Box<HetNode>,
        predicate: Expr,
    },
    Project {
        input: Box<HetNode>,
        exprs: Vec<Expr>,
        names: Vec<String>,
    },
    HashJoin {
        build: Box<HetNode>,
        probe: Box<HetNode>,
        build_key: usize,
        probe_key: usize,
        payload: Vec<usize>,
    },
    Reduce {
        input: Box<HetNode>,
        aggs: Vec<AggSpec>,
        names: Vec<String>,
    },
    GroupBy {
        input: Box<HetNode>,
        keys: Vec<usize>,
        aggs: Vec<AggSpec>,
        names: Vec<String>,
    },
}

impl HetNode {
    /// The input of a single-input node.
    pub fn input(&self) -> Option<&HetNode> {
        match self {
            HetNode::Segmenter { .. } => None,
            HetNode::Router { input, .. }
            | HetNode::Cpu2Gpu { input }
            | HetNode::Gpu2Cpu { input }
            | HetNode::MemMove { input, .. }
            | HetNode::Pack { input, .. }
            | HetNode::Unpack { input }
            | HetNode::Filter { input, .. }
            | HetNode::Project { input, .. }
            | HetNode::Reduce { input, .. }
            | HetNode::GroupBy { input, .. } => Some(input),
            HetNode::HashJoin { probe, .. } => Some(probe),
        }
    }

    /// Names of this node's output columns.
    pub fn output_names(&self) -> Vec<String> {
        match self {
            HetNode::Segmenter { projection, .. } => projection.clone(),
            HetNode::Project { names, .. } => names.clone(),
            HetNode::HashJoin { build, probe, payload, .. } => {
                let mut names = probe.output_names();
                let build_names = build.output_names();
                for &p in payload {
                    names
                        .push(build_names.get(p).cloned().unwrap_or_else(|| format!("payload{p}")));
                }
                names
            }
            HetNode::Reduce { names, .. } | HetNode::GroupBy { names, .. } => names.clone(),
            other => other.input().map(|i| i.output_names()).unwrap_or_default(),
        }
    }

    /// Count of HetExchange operators (router, device crossings, mem-move,
    /// pack/unpack) in the plan — the quantity Figure 1 grows step by step.
    pub fn hetexchange_operator_count(&self) -> usize {
        let own = matches!(
            self,
            HetNode::Router { .. }
                | HetNode::Cpu2Gpu { .. }
                | HetNode::Gpu2Cpu { .. }
                | HetNode::MemMove { .. }
                | HetNode::Pack { .. }
                | HetNode::Unpack { .. }
        ) as usize;
        let children = match self {
            HetNode::HashJoin { build, probe, .. } => {
                build.hetexchange_operator_count() + probe.hetexchange_operator_count()
            }
            other => other.input().map_or(0, HetNode::hetexchange_operator_count),
        };
        own + children
    }

    /// Total number of plan nodes.
    pub fn node_count(&self) -> usize {
        1 + match self {
            HetNode::HashJoin { build, probe, .. } => build.node_count() + probe.node_count(),
            other => other.input().map_or(0, HetNode::node_count),
        }
    }

    /// Render an indented EXPLAIN-style representation.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0);
        out
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        match self {
            HetNode::Segmenter { table, projection } => {
                out.push_str(&format!("{pad}segmenter {table} [{}]\n", projection.join(", ")));
            }
            HetNode::Router { input, policy, targets } => {
                let targets: Vec<String> =
                    targets.iter().map(|t| format!("{}x{}", t.dop, t.kind)).collect();
                out.push_str(&format!(
                    "{pad}router policy={policy} targets=[{}]\n",
                    targets.join(", ")
                ));
                input.explain_into(out, depth + 1);
            }
            HetNode::Cpu2Gpu { input } => {
                out.push_str(&format!("{pad}cpu2gpu\n"));
                input.explain_into(out, depth + 1);
            }
            HetNode::Gpu2Cpu { input } => {
                out.push_str(&format!("{pad}gpu2cpu\n"));
                input.explain_into(out, depth + 1);
            }
            HetNode::MemMove { input, broadcast } => {
                out.push_str(&format!(
                    "{pad}mem-move{}\n",
                    if *broadcast { " (broadcast)" } else { "" }
                ));
                input.explain_into(out, depth + 1);
            }
            HetNode::Pack { input, hash_partitions } => {
                match hash_partitions {
                    Some(p) => out.push_str(&format!("{pad}hash-pack partitions={p}\n")),
                    None => out.push_str(&format!("{pad}pack\n")),
                }
                input.explain_into(out, depth + 1);
            }
            HetNode::Unpack { input } => {
                out.push_str(&format!("{pad}unpack\n"));
                input.explain_into(out, depth + 1);
            }
            HetNode::Filter { input, .. } => {
                out.push_str(&format!("{pad}filter\n"));
                input.explain_into(out, depth + 1);
            }
            HetNode::Project { input, names, .. } => {
                out.push_str(&format!("{pad}project [{}]\n", names.join(", ")));
                input.explain_into(out, depth + 1);
            }
            HetNode::HashJoin { build, probe, .. } => {
                out.push_str(&format!("{pad}hash-join\n"));
                out.push_str(&format!("{pad}  build:\n"));
                build.explain_into(out, depth + 2);
                out.push_str(&format!("{pad}  probe:\n"));
                probe.explain_into(out, depth + 2);
            }
            HetNode::Reduce { input, names, .. } => {
                out.push_str(&format!("{pad}reduce [{}]\n", names.join(", ")));
                input.explain_into(out, depth + 1);
            }
            HetNode::GroupBy { input, names, .. } => {
                out.push_str(&format!("{pad}group-by [{}]\n", names.join(", ")));
                input.explain_into(out, depth + 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetex_jit::Expr;

    fn sample_rel_plan() -> RelNode {
        // SELECT SUM(lo_revenue) FROM lineorder, date
        // WHERE lo_orderdate = d_datekey AND d_year = 1993 AND lo_discount BETWEEN 1 AND 3
        let dates = RelNode::scan("date", &["d_datekey", "d_year"])
            .filter(Expr::col(1).eq(Expr::lit(1993)));
        RelNode::scan("lineorder", &["lo_orderdate", "lo_discount", "lo_revenue"])
            .filter(Expr::col(1).between(1, 3))
            .hash_join(dates, 0, 0, &[1])
            .reduce(vec![hetex_jit::AggSpec::sum(Expr::col(2))], &["revenue"])
    }

    #[test]
    fn rel_output_names_follow_operators() {
        let scan = RelNode::scan("lineorder", &["lo_orderdate", "lo_revenue"]);
        assert_eq!(scan.output_names(), vec!["lo_orderdate", "lo_revenue"]);
        assert_eq!(scan.column_index("lo_revenue"), Some(1));
        assert_eq!(scan.column_index("missing"), None);

        let plan = sample_rel_plan();
        assert_eq!(plan.output_names(), vec!["revenue"]);
        assert_eq!(plan.output_width(), 1);
        assert_eq!(plan.node_count(), 6);

        // Join output = probe columns ++ payload columns.
        if let RelNode::Reduce { input, .. } = &plan {
            let join_names = input.output_names();
            assert_eq!(join_names, vec!["lo_orderdate", "lo_discount", "lo_revenue", "d_year"]);
        } else {
            panic!("expected reduce at root");
        }
    }

    #[test]
    fn explain_renders_tree_shape() {
        let text = sample_rel_plan().explain();
        assert!(text.contains("reduce [revenue]"));
        assert!(text.contains("hash-join"));
        assert!(text.contains("scan lineorder"));
        assert!(text.contains("scan date"));
        // Build side appears before probe side.
        assert!(text.find("build:").unwrap() < text.find("probe:").unwrap());
    }

    #[test]
    fn het_plan_counts_hetexchange_operators() {
        let plan = HetNode::Reduce {
            input: Box::new(HetNode::Unpack {
                input: Box::new(HetNode::Cpu2Gpu {
                    input: Box::new(HetNode::MemMove {
                        input: Box::new(HetNode::Router {
                            input: Box::new(HetNode::Segmenter {
                                table: "t".into(),
                                projection: vec!["a".into(), "b".into()],
                            }),
                            policy: RouterPolicy::LeastLoaded,
                            targets: vec![DeviceTarget::cpu(4), DeviceTarget::gpu(2)],
                        }),
                        broadcast: false,
                    }),
                }),
            }),
            aggs: vec![hetex_jit::AggSpec::count()],
            names: vec!["cnt".into()],
        };
        assert_eq!(plan.hetexchange_operator_count(), 4);
        assert_eq!(plan.node_count(), 6);
        assert_eq!(plan.output_names(), vec!["cnt"]);
        let text = plan.explain();
        assert!(text.contains("router policy=least-loaded targets=[4xcpu, 2xgpu]"));
        assert!(text.contains("cpu2gpu"));
        assert!(text.contains("mem-move"));
        assert!(text.contains("segmenter t"));
    }

    #[test]
    fn device_target_constructors() {
        assert_eq!(DeviceTarget::cpu(8).kind, DeviceKind::CpuCore);
        assert_eq!(DeviceTarget::gpu(2).dop, 2);
        assert_eq!(RouterPolicy::Hash.to_string(), "hash");
        assert_eq!(RouterPolicy::Union.to_string(), "union");
    }
}
