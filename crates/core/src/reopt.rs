//! Feedback-driven plan re-optimization (ROADMAP open item 1).
//!
//! HetExchange freezes the device-placement split and the degrees of
//! parallelism at plan time; every adaptive mechanism shipped so far
//! (slowdown-feedback routing, work stealing, calibration) moves blocks
//! *below* that frozen plan. This module closes the loop **above** the plan,
//! in the adaptive-reoptimization style of Cascades-era optimizers: execute,
//! capture runtime measurements, and feed them back into cost estimation and
//! a small plan-space search, so a repeated query's second run is planned
//! from its first run's observed behaviour instead of the declared profiles.
//!
//! The pieces:
//!
//! * [`plan_fingerprint`] — a stable hash of the device-agnostic plan, the
//!   key under which measurements are remembered.
//! * [`PlanFeedback`] — what one successful run teaches us: the placement it
//!   ran under, its simulated time, the per-device observed-slowdown EWMAs,
//!   per-stage row counts (actual selectivities) and timelines, control-plane
//!   traffic and interconnect bytes.
//! * [`FeedbackCache`] — a concurrent fingerprint→feedback map shared across
//!   queries (engine-lifetime by default; the `QueryServer` shares one
//!   server-lifetime cache across its whole pool).
//! * [`candidates`] / [`reoptimize`] — the search: enumerate valid
//!   placement/DOP combinations for the topology, cost each one from the
//!   feedback record anchored to the *measured* incumbent time, and emit a
//!   rewrite only when the estimated gain clears `ReoptConfig::min_gain`.
//!
//! Determinism boundaries: the search consumes only the feedback record, the
//! topology's declared profiles and the [`CostModel`]'s calibrated constants
//! — never wall-clock state — so identical feedback yields an identical
//! decision. The feedback itself is distilled from simulated measurements,
//! which on gated plans can vary slightly with worker interleaving; benches
//! therefore compare medians, and the differential suite pins the disabled
//! path (`ReoptConfig::disabled()` never fingerprints, never caches, never
//! rewrites).

use crate::cost::CostModel;
use hetex_common::config::{ExecutionTarget, EST_MAX_TUPLE_BYTES};
use hetex_common::EngineConfig;
use hetex_topology::ServerTopology;
use std::collections::HashMap;
use std::sync::Mutex;

/// Smoothing factor folding a newer run's measurements into an existing
/// feedback record of the *same* placement (a placement change replaces the
/// record wholesale — times measured under different placements must not be
/// averaged together).
pub const FEEDBACK_EWMA_ALPHA: f64 = 0.5;

/// Planning-side effective PCIe bandwidth (GB/s) used to convert candidate
/// interconnect-byte estimates into the nanosecond floor that asynchronous
/// DMA puts under a placement's completion time. A single scalar suffices
/// for ranking candidates on one server. Matches the paper server's
/// ~12 GB/s effective x16 Gen 3 links.
pub const REOPT_PCIE_GBPS: f64 = 12.0;

/// FNV-1a over the plan's stable debug rendering: a fingerprint for "the
/// same query submitted again". Stable within a build of the workspace
/// (plan rendering is deterministic); not meant to survive serialization
/// across versions — the cache it keys is in-memory and engine-lifetime.
pub fn plan_fingerprint(plan: &crate::plan::RelNode) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let rendered = format!("{plan:?}");
    let mut hash = FNV_OFFSET;
    for byte in rendered.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// What one stage's execution taught us: rows that entered, rows that
/// survived, and the simulated completion instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageObservation {
    /// Physical rows entering the stage across all instances.
    pub rows_in: u64,
    /// Physical rows the stage emitted.
    pub rows_out: u64,
    /// Simulated completion time of the stage, nanoseconds.
    pub completion_ns: u64,
}

impl StageObservation {
    /// The stage's *actual* selectivity (`rows_out / rows_in`); `None` when
    /// nothing entered.
    pub fn selectivity(&self) -> Option<f64> {
        (self.rows_in > 0).then(|| self.rows_out as f64 / self.rows_in as f64)
    }
}

/// Everything a successful run teaches the reoptimizer, distilled from the
/// engine's `QueryStats`.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanFeedback {
    /// [`plan_fingerprint`] of the device-agnostic plan.
    pub fingerprint: u64,
    /// Placement the measurements were taken under.
    pub target: ExecutionTarget,
    /// CPU degree of parallelism of the measured run.
    pub cpu_dop: usize,
    /// GPU degree of parallelism of the measured run.
    pub gpu_dop: usize,
    /// Simulated end-to-end time of the measured run, nanoseconds (EWMA
    /// across repeated runs of the same placement).
    pub sim_time_ns: f64,
    /// Observed-slowdown EWMA per device slot, indexed like the topology's
    /// device list (1.0 = healthy). Empty when the run carried no
    /// observations (stage-at-a-time mode).
    pub observed_slowdowns: Vec<f64>,
    /// Per-stage row counts and timelines (actual selectivities).
    pub stages: Vec<StageObservation>,
    /// Cross-node control-plane acquisitions of the measured run.
    pub remote_control_acquisitions: u64,
    /// Interconnect bytes (scale-weighted) of the measured run.
    pub bytes_transferred: f64,
    /// How many runs have been folded into this record.
    pub runs: u32,
}

impl PlanFeedback {
    /// Fold a newer run of the same fingerprint into this record. Same
    /// placement: measurements merge by EWMA ([`FEEDBACK_EWMA_ALPHA`]).
    /// Different placement (the reoptimizer rewrote the plan since): the
    /// newer record replaces the old wholesale — its measurements are the
    /// only ones valid for the placement now in effect.
    pub fn absorb(&mut self, newer: PlanFeedback) {
        let runs = self.runs.saturating_add(newer.runs);
        if (newer.target, newer.cpu_dop, newer.gpu_dop) != (self.target, self.cpu_dop, self.gpu_dop)
        {
            *self = newer;
            self.runs = runs;
            return;
        }
        let a = FEEDBACK_EWMA_ALPHA;
        self.sim_time_ns = a * newer.sim_time_ns + (1.0 - a) * self.sim_time_ns;
        if self.observed_slowdowns.len() == newer.observed_slowdowns.len() {
            for (mine, theirs) in self.observed_slowdowns.iter_mut().zip(&newer.observed_slowdowns)
            {
                *mine = a * theirs + (1.0 - a) * *mine;
            }
        } else {
            self.observed_slowdowns = newer.observed_slowdowns;
        }
        self.stages = newer.stages;
        self.remote_control_acquisitions = newer.remote_control_acquisitions;
        self.bytes_transferred = newer.bytes_transferred;
        self.runs = runs;
    }

    /// Observed slowdown of device slot `slot` (1.0 when never observed),
    /// floored at 1.0 like the observer's own EWMA.
    pub fn slowdown_for(&self, slot: usize) -> f64 {
        self.observed_slowdowns.get(slot).copied().unwrap_or(1.0).max(1.0)
    }

    /// The widest stage's input row count — the parallelism the plan can
    /// actually use (zero when no stage observations were captured).
    pub fn widest_stage_rows(&self) -> u64 {
        self.stages.iter().map(|s| s.rows_in).max().unwrap_or(0)
    }
}

/// A concurrent fingerprint→[`PlanFeedback`] map. One instance lives for the
/// engine's lifetime (so two plain `execute` calls of the same plan share
/// measurements); the serving layer shares a single cache across its whole
/// worker pool.
#[derive(Debug, Default)]
pub struct FeedbackCache {
    inner: Mutex<HashMap<u64, PlanFeedback>>,
}

impl FeedbackCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The feedback recorded for `fingerprint`, if any (cloned out — the
    /// reoptimizer works on a snapshot, never under the cache lock).
    pub fn get(&self, fingerprint: u64) -> Option<PlanFeedback> {
        self.inner.lock().expect("feedback cache poisoned").get(&fingerprint).cloned()
    }

    /// Record one run's feedback: absorbed into the existing record of the
    /// same fingerprint, or inserted fresh.
    pub fn record(&self, feedback: PlanFeedback) {
        let mut inner = self.inner.lock().expect("feedback cache poisoned");
        match inner.entry(feedback.fingerprint) {
            std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().absorb(feedback),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(feedback);
            }
        }
    }

    /// Number of distinct fingerprints remembered.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("feedback cache poisoned").len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Forget everything.
    pub fn clear(&self) {
        self.inner.lock().expect("feedback cache poisoned").clear();
    }
}

/// One point of the plan space: a device placement plus per-class degrees of
/// parallelism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// Device placement of the candidate.
    pub target: ExecutionTarget,
    /// CPU degree of parallelism.
    pub cpu_dop: usize,
    /// GPU degree of parallelism.
    pub gpu_dop: usize,
}

impl Candidate {
    /// The candidate a configuration currently encodes.
    pub fn of(config: &EngineConfig) -> Self {
        Self { target: config.target, cpu_dop: config.cpu_dop, gpu_dop: config.gpu_dop }
    }

    /// Human-readable label (`hybrid(8,2)` and friends) used by benches and
    /// the reopt summary.
    pub fn label(&self) -> String {
        match self.target {
            ExecutionTarget::CpuOnly => format!("cpu_only({})", self.cpu_dop),
            ExecutionTarget::GpuOnly => format!("gpu_only({})", self.gpu_dop),
            ExecutionTarget::Hybrid => format!("hybrid({},{})", self.cpu_dop, self.gpu_dop),
        }
    }

    /// The submitted configuration re-pointed at this candidate: placement
    /// and DOPs replaced, everything else (block size, weights, toggles,
    /// budgets) preserved.
    pub fn apply(&self, base: &EngineConfig) -> EngineConfig {
        let mut config = base.clone();
        config.target = self.target;
        config.cpu_dop = self.cpu_dop;
        config.gpu_dop = self.gpu_dop;
        config
    }

    /// Total degree of parallelism.
    pub fn total_dop(&self) -> usize {
        self.cpu_dop + self.gpu_dop
    }

    /// Topology device slots this candidate occupies: like the parallelizer,
    /// the first `cpu_dop` cores and the first `gpu_dop` GPUs in topology
    /// order.
    pub fn device_slots(&self, topology: &ServerTopology) -> Vec<usize> {
        let mut slots = Vec::with_capacity(self.total_dop());
        if self.target != ExecutionTarget::GpuOnly {
            slots.extend(topology.cpu_cores().iter().take(self.cpu_dop).map(|d| d.index()));
        }
        if self.target != ExecutionTarget::CpuOnly {
            slots.extend(topology.gpus().iter().take(self.gpu_dop).map(|d| d.index()));
        }
        slots
    }
}

/// A costed candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateCost {
    /// The candidate.
    pub candidate: Candidate,
    /// Estimated simulated time, nanoseconds, anchored to the incumbent's
    /// measured time.
    pub estimated_ns: f64,
}

/// The outcome of one plan-space search.
#[derive(Debug, Clone, PartialEq)]
pub struct ReoptDecision {
    /// The winning candidate (always different from the incumbent — the
    /// search returns `None` rather than a no-op decision).
    pub chosen: Candidate,
    /// Estimated relative gain over the incumbent (0.25 = 25% faster).
    pub estimated_gain: f64,
    /// The incumbent's estimated time, nanoseconds (equal to the measured
    /// feedback time when the incumbent is the measured placement).
    pub incumbent_ns: f64,
    /// Every candidate costed, best first.
    pub ranked: Vec<CandidateCost>,
}

/// Enumerate the plan space for `base` on `topology`, honouring the search
/// axes of `base.reopt`: every placement (or only the incumbent's), a
/// power-of-two CPU ladder up to the core count (or only the incumbent DOP),
/// every GPU count (ditto). Only combinations that validate under the base
/// configuration survive — every candidate this function returns can be
/// applied and executed as-is, which is the invariant the verifier proptest
/// and `plan_lint`'s `reopt` target pin.
pub fn candidates(base: &EngineConfig, topology: &ServerTopology) -> Vec<Candidate> {
    let reopt = base.reopt;
    let cores = topology.cpu_cores().len();
    let gpus = topology.gpus().len();
    let incumbent = Candidate::of(base);

    let targets: Vec<ExecutionTarget> = if reopt.search_target {
        vec![ExecutionTarget::CpuOnly, ExecutionTarget::GpuOnly, ExecutionTarget::Hybrid]
    } else {
        vec![base.target]
    };
    let mut cpu_dops: Vec<usize> = if reopt.search_dop {
        let mut ladder: Vec<usize> = std::iter::successors(Some(1usize), |d| d.checked_mul(2))
            .take_while(|d| *d <= cores)
            .collect();
        if cores > 0 && !ladder.contains(&cores) {
            ladder.push(cores);
        }
        ladder.push(base.cpu_dop);
        ladder
    } else {
        vec![base.cpu_dop]
    };
    cpu_dops.sort_unstable();
    cpu_dops.dedup();
    let mut gpu_dops: Vec<usize> =
        if reopt.search_dop { (0..=gpus).collect() } else { vec![base.gpu_dop] };
    gpu_dops.sort_unstable();
    gpu_dops.dedup();

    let mut out: Vec<Candidate> = Vec::new();
    for &target in &targets {
        for &cpu_dop in &cpu_dops {
            for &gpu_dop in &gpu_dops {
                let candidate = match target {
                    ExecutionTarget::CpuOnly if cpu_dop > 0 && cpu_dop <= cores => {
                        Candidate { target, cpu_dop, gpu_dop: 0 }
                    }
                    ExecutionTarget::GpuOnly if gpu_dop > 0 => {
                        Candidate { target, cpu_dop: 0, gpu_dop }
                    }
                    // A hybrid with one empty class duplicates a single-
                    // device candidate; require both classes populated.
                    ExecutionTarget::Hybrid if cpu_dop > 0 && cpu_dop <= cores && gpu_dop > 0 => {
                        Candidate { target, cpu_dop, gpu_dop }
                    }
                    _ => continue,
                };
                if out.contains(&candidate) {
                    continue;
                }
                if candidate.apply(base).validate().is_err() {
                    continue;
                }
                out.push(candidate);
            }
        }
    }
    // The incumbent always participates (it anchors the gain computation),
    // provided it is itself valid.
    if !out.contains(&incumbent) && incumbent.apply(base).validate().is_ok() {
        out.push(incumbent);
    }
    out
}

/// The search: cost every candidate from the feedback record, anchored to
/// the measured incumbent time, and return a rewrite when a candidate beats
/// the incumbent by at least `base.reopt.min_gain`. `None` means "keep the
/// plan as submitted" — the search found nothing clearly better (or
/// re-optimization is disabled, or the feedback carries no usable anchor).
///
/// The estimate deliberately consumes only *observed* behaviour: per-device
/// slowdowns come from the feedback's EWMAs (never from
/// `DeviceProfile::exec_slowdown`, which routing estimates are forbidden to
/// see), transfer and control-plane terms are scaled from the measured run's
/// own traffic, and the `CostModel` contributes its calibrated control-plane
/// constant. Transfer is a *floor* on a candidate's time, not an addend:
/// mem-move DMA runs asynchronously, so a placement is bounded by
/// `max(compute, transfer)`.
pub fn reoptimize(
    base: &EngineConfig,
    feedback: &PlanFeedback,
    topology: &ServerTopology,
    cost: &CostModel,
) -> Option<ReoptDecision> {
    if !base.reopt.enabled || feedback.sim_time_ns <= 0.0 {
        return None;
    }
    let anchor =
        Candidate { target: feedback.target, cpu_dop: feedback.cpu_dop, gpu_dop: feedback.gpu_dop };
    // Routing adapts to observed slowdowns only when the executing config
    // feeds them back; the estimate must model the run it would produce.
    let adaptive = base.calibration.slowdown_feedback;
    let width_blocks = match feedback.widest_stage_rows() {
        0 => None,
        rows => Some(rows.div_ceil(base.block_capacity.max(1) as u64).max(1)),
    };

    let raw_anchor = raw_compute_time(&anchor, feedback, topology, adaptive, width_blocks)?;
    // κ converts the unitless compute estimate into nanoseconds by pinning
    // the anchor candidate to its *measured* time.
    let kappa = feedback.sim_time_ns / raw_anchor;
    let anchor_gpu_frac = gpu_rate_fraction(&anchor, topology);
    let anchor_control_ns = control_ns(&anchor, &anchor, feedback, cost);

    let mut ranked: Vec<CandidateCost> = Vec::new();
    for candidate in candidates(base, topology) {
        let Some(raw) = raw_compute_time(&candidate, feedback, topology, adaptive, width_blocks)
        else {
            continue;
        };
        // Anchored compute term, floored by the candidate's interconnect
        // time — mem-move DMA is asynchronous, so transfer *overlaps*
        // compute and bounds the run from below instead of adding to it —
        // plus the control-plane cost *difference* versus the anchor (whose
        // measured time already includes its own control traffic).
        let candidate_transfer = transfer_ns(&candidate, feedback, topology, anchor_gpu_frac);
        let control_delta = control_ns(&candidate, &anchor, feedback, cost) - anchor_control_ns;
        let estimated_ns = ((kappa * raw).max(candidate_transfer) + control_delta).max(1.0);
        ranked.push(CandidateCost { candidate, estimated_ns });
    }
    if ranked.is_empty() {
        return None;
    }
    ranked.sort_by(|a, b| {
        a.estimated_ns
            .total_cmp(&b.estimated_ns)
            // Deterministic tie-break: fewer devices first, then CPU-lean.
            .then(a.candidate.total_dop().cmp(&b.candidate.total_dop()))
            .then(a.candidate.gpu_dop.cmp(&b.candidate.gpu_dop))
    });

    let incumbent = Candidate::of(base);
    let incumbent_ns = ranked
        .iter()
        .find(|c| c.candidate == incumbent)
        .map(|c| c.estimated_ns)
        // An incumbent that failed to cost (e.g. zero devices on this
        // topology) is treated as the measured time.
        .unwrap_or(feedback.sim_time_ns);
    let best = ranked[0].clone();
    if best.candidate == incumbent || incumbent_ns <= 0.0 {
        return None;
    }
    let estimated_gain = 1.0 - best.estimated_ns / incumbent_ns;
    if estimated_gain < base.reopt.min_gain {
        return None;
    }
    Some(ReoptDecision { chosen: best.candidate, estimated_gain, incumbent_ns, ranked })
}

/// Unitless compute-time estimate of a candidate: work divided by the
/// aggregate observed-effective device rate. With adaptive routing the
/// aggregate is `Σ rate_d / slowdown_d` (feedback steers work away from
/// stragglers); with static routing work splits by *nominal* rates, so the
/// slowest device's slowdown bounds completion: `max_d slowdown_d / Σ
/// rate_d`. A candidate wider than the plan's widest stage (in blocks)
/// cannot use its extra devices; the estimate scales accordingly.
fn raw_compute_time(
    candidate: &Candidate,
    feedback: &PlanFeedback,
    topology: &ServerTopology,
    adaptive: bool,
    width_blocks: Option<u64>,
) -> Option<f64> {
    let slots = candidate.device_slots(topology);
    if slots.is_empty() {
        return None;
    }
    let mut adaptive_rate = 0.0f64;
    let mut nominal_rate = 0.0f64;
    let mut max_slowdown = 1.0f64;
    for &slot in &slots {
        let profile = topology.devices().get(slot)?;
        let rate = profile.compute_gops.max(f64::MIN_POSITIVE);
        let slowdown = feedback.slowdown_for(slot);
        adaptive_rate += rate / slowdown;
        nominal_rate += rate;
        max_slowdown = max_slowdown.max(slowdown);
    }
    let mut time = if adaptive { 1.0 / adaptive_rate } else { max_slowdown / nominal_rate };
    if let Some(width) = width_blocks {
        let devices = slots.len() as f64;
        if devices > width as f64 {
            // Only `width` devices can hold a block at a time; the surplus
            // contributes nothing.
            time *= devices / width as f64;
        }
    }
    Some(time)
}

/// Fraction of a candidate's aggregate nominal rate contributed by GPUs —
/// the share of work (and therefore of interconnect traffic, for
/// CPU-resident data) the GPUs attract.
fn gpu_rate_fraction(candidate: &Candidate, topology: &ServerTopology) -> f64 {
    let gpu_slots: Vec<usize> = topology.gpus().iter().map(|d| d.index()).collect();
    let mut total = 0.0f64;
    let mut gpu = 0.0f64;
    for slot in candidate.device_slots(topology) {
        let Some(profile) = topology.devices().get(slot) else { continue };
        let rate = profile.compute_gops.max(0.0);
        total += rate;
        if gpu_slots.contains(&slot) {
            gpu += rate;
        }
    }
    if total > 0.0 {
        gpu / total
    } else {
        0.0
    }
}

/// Estimated interconnect time of a candidate, nanoseconds. Scaled from the
/// anchor's *measured* bytes when the anchor itself fed GPUs; estimated from
/// the widest stage's rows otherwise (the anchor never touched the bus, so
/// there is nothing measured to scale).
fn transfer_ns(
    candidate: &Candidate,
    feedback: &PlanFeedback,
    topology: &ServerTopology,
    anchor_gpu_frac: f64,
) -> f64 {
    let frac = gpu_rate_fraction(candidate, topology);
    let bytes = if anchor_gpu_frac > 0.0 {
        feedback.bytes_transferred * (frac / anchor_gpu_frac)
    } else {
        feedback.widest_stage_rows() as f64 * EST_MAX_TUPLE_BYTES as f64 * frac
    };
    bytes / REOPT_PCIE_GBPS
}

/// Estimated control-plane time of a candidate, nanoseconds: the measured
/// acquisition count scaled by the consumer-count ratio (more consumers,
/// proportionally more cross-node pushes), priced at the cost model's
/// calibrated per-acquisition constant.
fn control_ns(
    candidate: &Candidate,
    anchor: &Candidate,
    feedback: &PlanFeedback,
    cost: &CostModel,
) -> f64 {
    let per_acquisition = cost.control_plane_ns(true) as f64;
    let anchor_dop = anchor.total_dop().max(1) as f64;
    feedback.remote_control_acquisitions as f64
        * per_acquisition
        * (candidate.total_dop() as f64 / anchor_dop)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::RelNode;
    use hetex_common::config::ReoptConfig;
    use hetex_jit::{AggSpec, Expr};
    use std::sync::Arc;

    fn sample_plan() -> RelNode {
        RelNode::scan("t", &["a", "b"])
            .filter(Expr::col(0).gt_lit(42))
            .reduce(vec![AggSpec::sum(Expr::col(1))], &["sum_b"])
    }

    fn feedback_for(config: &EngineConfig, topology: &ServerTopology) -> PlanFeedback {
        PlanFeedback {
            fingerprint: plan_fingerprint(&sample_plan()),
            target: config.target,
            cpu_dop: config.cpu_dop,
            gpu_dop: config.gpu_dop,
            sim_time_ns: 1_000_000.0,
            observed_slowdowns: vec![1.0; topology.devices().len()],
            stages: vec![StageObservation {
                rows_in: 200_000,
                rows_out: 1,
                completion_ns: 1_000_000,
            }],
            remote_control_acquisitions: 40,
            bytes_transferred: 1e6,
            runs: 1,
        }
    }

    #[test]
    fn fingerprint_is_stable_and_plan_sensitive() {
        let a = plan_fingerprint(&sample_plan());
        let b = plan_fingerprint(&sample_plan());
        assert_eq!(a, b, "same plan, same fingerprint");
        let other = RelNode::scan("t", &["a", "b"])
            .filter(Expr::col(0).gt_lit(43))
            .reduce(vec![AggSpec::sum(Expr::col(1))], &["sum_b"]);
        assert_ne!(a, plan_fingerprint(&other), "different literal, different fingerprint");
    }

    #[test]
    fn stage_observation_reports_actual_selectivity() {
        let obs = StageObservation { rows_in: 1000, rows_out: 250, completion_ns: 5 };
        assert_eq!(obs.selectivity(), Some(0.25));
        let empty = StageObservation { rows_in: 0, rows_out: 0, completion_ns: 0 };
        assert_eq!(empty.selectivity(), None);
    }

    #[test]
    fn cache_absorbs_same_placement_and_replaces_on_change() {
        let topology = ServerTopology::paper_server();
        let config = EngineConfig::hybrid(8, 2);
        let cache = FeedbackCache::new();
        assert!(cache.is_empty());
        let mut first = feedback_for(&config, &topology);
        first.sim_time_ns = 2_000_000.0;
        cache.record(first.clone());
        let mut second = feedback_for(&config, &topology);
        second.sim_time_ns = 1_000_000.0;
        cache.record(second);
        let merged = cache.get(first.fingerprint).unwrap();
        assert_eq!(merged.runs, 2);
        assert!(
            (merged.sim_time_ns - 1_500_000.0).abs() < 1.0,
            "EWMA of 2ms and 1ms at alpha {FEEDBACK_EWMA_ALPHA}: {}",
            merged.sim_time_ns
        );
        // A placement change replaces the record wholesale.
        let replanned = feedback_for(&EngineConfig::cpu_only(24), &topology);
        cache.record(replanned.clone());
        let replaced = cache.get(first.fingerprint).unwrap();
        assert_eq!(replaced.target, ExecutionTarget::CpuOnly);
        assert_eq!(replaced.sim_time_ns, replanned.sim_time_ns);
        assert_eq!(replaced.runs, 3, "run count survives the replacement");
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn candidates_cover_the_space_and_all_validate() {
        let topology = ServerTopology::paper_server();
        let base = EngineConfig::hybrid(8, 2).with_reopt(ReoptConfig::enabled());
        let space = candidates(&base, &topology);
        assert!(space.contains(&Candidate::of(&base)), "incumbent always present");
        assert!(space.iter().any(|c| c.target == ExecutionTarget::CpuOnly));
        assert!(space.iter().any(|c| c.target == ExecutionTarget::GpuOnly));
        for candidate in &space {
            candidate.apply(&base).validate().unwrap();
        }
        // Axes off: the space collapses to the incumbent.
        let frozen = EngineConfig::hybrid(8, 2)
            .with_reopt(ReoptConfig::enabled().with_search_target(false).with_search_dop(false));
        assert_eq!(candidates(&frozen, &topology), vec![Candidate::of(&frozen)]);
    }

    #[test]
    fn reoptimize_routes_around_an_observed_straggler() {
        let topology = ServerTopology::paper_server();
        let base = EngineConfig::hybrid(8, 2).with_reopt(ReoptConfig::enabled());
        let mut feedback = feedback_for(&base, &topology);
        // The second GPU was observed 8x slow; static routing (no slowdown
        // feedback) kept feeding it, so the whole run stretched.
        let slow_gpu = topology.gpus()[1].index();
        feedback.observed_slowdowns[slow_gpu] = 8.0;
        let cost = CostModel::from_config(&base);
        let mut static_base = base.clone();
        static_base.calibration.slowdown_feedback = false;
        let decision = reoptimize(&static_base, &feedback, &topology, &cost)
            .expect("an 8x straggler must trigger a rewrite");
        assert_ne!(decision.chosen, Candidate::of(&static_base));
        assert!(
            decision.chosen.gpu_dop <= 1,
            "the rewrite must drop the straggler GPU: {}",
            decision.chosen.label()
        );
        assert!(decision.estimated_gain >= static_base.reopt.min_gain);
        assert!(!decision.ranked.is_empty());
        // The chosen plan is the best-ranked one.
        assert_eq!(decision.ranked[0].candidate, decision.chosen);
    }

    #[test]
    fn reoptimize_is_quiet_without_enabled_or_signal() {
        let topology = ServerTopology::paper_server();
        let cost = CostModel::legacy();
        // Disabled: never a decision, whatever the feedback says.
        let off = EngineConfig::hybrid(8, 2);
        let mut feedback = feedback_for(&off, &topology);
        feedback.observed_slowdowns[topology.gpus()[1].index()] = 8.0;
        assert!(reoptimize(&off, &feedback, &topology, &cost).is_none());
        // Enabled but healthy: the incumbent placement is already near the
        // estimator's optimum only if it uses every fast device — a healthy
        // hybrid(8,2) still leaves cores idle, so a rewrite is allowed; what
        // must hold is determinism: the same inputs give the same answer.
        let on = EngineConfig::hybrid(8, 2).with_reopt(ReoptConfig::enabled());
        let healthy = feedback_for(&on, &topology);
        let first = reoptimize(&on, &healthy, &topology, &cost);
        let second = reoptimize(&on, &healthy, &topology, &cost);
        assert_eq!(first, second, "the search must be deterministic");
        // A zero-time anchor carries no usable signal.
        let mut zeroed = feedback_for(&on, &topology);
        zeroed.sim_time_ns = 0.0;
        assert!(reoptimize(&on, &zeroed, &topology, &cost).is_none());
    }

    #[test]
    fn feedback_cache_is_shareable_across_threads() {
        let cache = Arc::new(FeedbackCache::new());
        let topology = ServerTopology::paper_server();
        let config = EngineConfig::hybrid(4, 1);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let feedback = feedback_for(&config, &topology);
                std::thread::spawn(move || cache.record(feedback))
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(plan_fingerprint(&sample_plan())).unwrap().runs, 4);
    }
}
