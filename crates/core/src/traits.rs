//! The four physical traits of §3.3 and their derivation over a plan.
//!
//! "Query execution on heterogeneous hardware has four fundamental traits:
//! target device, degree of parallelism, data locality and data packing. Each
//! of the four operators of the HetExchange framework changes one of these
//! traits on its output, without modifying its input." Relational operators
//! require their input to be **local** and **unpacked**.
//!
//! [`PlanTraits`] carries the four traits; [`derive_traits`] computes the
//! traits of a [`HetNode`]'s output, and [`check_relational_requirements`]
//! verifies that every relational operator in a plan receives local, unpacked
//! input — the invariant the parallelizer must establish.

use crate::plan::HetNode;
use hetex_common::{HetError, Result};
use hetex_topology::DeviceKind;

/// The four physical traits of a plan edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanTraits {
    /// Device type the producing operator executes on.
    pub device: DeviceKind,
    /// Degree of parallelism (number of instances) of the producing operator.
    pub dop: usize,
    /// Whether the data is local to its consumer's memory node.
    pub local: bool,
    /// Whether the data is packed into blocks (true) or flows tuple-at-a-time
    /// in registers (false).
    pub packed: bool,
}

impl PlanTraits {
    /// Traits of a freshly segmented base table: produced on the CPU by a
    /// single segmenter instance, packed into blocks, with no locality
    /// guarantee for whichever consumer ends up reading them.
    pub fn base_table() -> Self {
        Self { device: DeviceKind::CpuCore, dop: 1, local: false, packed: true }
    }
}

/// Traits of `node`'s output.
pub fn derive_traits(node: &HetNode) -> PlanTraits {
    match node {
        HetNode::Segmenter { .. } => PlanTraits::base_table(),
        // Control flow converters.
        HetNode::Router { input, targets, .. } => {
            let input = derive_traits(input);
            let dop: usize = targets.iter().map(|t| t.dop).sum();
            // The router changes only the degree of parallelism. Its
            // consumers' device types are decided by the device-crossing
            // operators above it, so the device trait is inherited.
            PlanTraits { dop: dop.max(1), ..input }
        }
        HetNode::Cpu2Gpu { input } => {
            let input = derive_traits(input);
            // Device crossings change only the target device; data locality is
            // the mem-move's concern (the parallelizer places mem-move *below*
            // cpu2gpu, so the data is already on the GPU when the kernel
            // launches — Figure 1e).
            PlanTraits { device: DeviceKind::Gpu, ..input }
        }
        HetNode::Gpu2Cpu { input } => {
            let input = derive_traits(input);
            PlanTraits { device: DeviceKind::CpuCore, ..input }
        }
        // Data flow converters.
        HetNode::MemMove { input, .. } => {
            let input = derive_traits(input);
            PlanTraits { local: true, ..input }
        }
        HetNode::Pack { input, .. } => {
            let input = derive_traits(input);
            PlanTraits { packed: true, ..input }
        }
        HetNode::Unpack { input } => {
            let input = derive_traits(input);
            PlanTraits { packed: false, ..input }
        }
        // Relational operators preserve the traits of their (probe) input.
        HetNode::Filter { input, .. }
        | HetNode::Project { input, .. }
        | HetNode::Reduce { input, .. }
        | HetNode::GroupBy { input, .. } => derive_traits(input),
        HetNode::HashJoin { probe, .. } => derive_traits(probe),
    }
}

/// Verify that every relational operator in the plan receives local, unpacked
/// input (the optimizer-facing contract of §3.3).
pub fn check_relational_requirements(node: &HetNode) -> Result<()> {
    let check_input = |input: &HetNode, what: &str| -> Result<()> {
        let traits = derive_traits(input);
        if traits.packed {
            return Err(HetError::Plan(format!(
                "{what} receives packed input; an unpack operator is missing"
            )));
        }
        if !traits.local {
            return Err(HetError::Plan(format!(
                "{what} receives non-local input; a mem-move operator is missing"
            )));
        }
        Ok(())
    };

    match node {
        HetNode::Segmenter { .. } => Ok(()),
        HetNode::Filter { input, .. } => {
            check_input(input, "filter")?;
            check_relational_requirements(input)
        }
        HetNode::Project { input, .. } => {
            check_input(input, "project")?;
            check_relational_requirements(input)
        }
        HetNode::Reduce { input, .. } => {
            check_input(input, "reduce")?;
            check_relational_requirements(input)
        }
        HetNode::GroupBy { input, .. } => {
            check_input(input, "group-by")?;
            check_relational_requirements(input)
        }
        HetNode::HashJoin { build, probe, .. } => {
            check_input(build, "hash-join build")?;
            check_input(probe, "hash-join probe")?;
            check_relational_requirements(build)?;
            check_relational_requirements(probe)
        }
        // HetExchange operators have no locality/packing requirements of
        // their own; recurse into their input.
        other => match other.input() {
            Some(input) => check_relational_requirements(input),
            None => Ok(()),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{DeviceTarget, RouterPolicy};
    use hetex_jit::{AggSpec, Expr};

    fn segmenter() -> HetNode {
        HetNode::Segmenter { table: "t".into(), projection: vec!["a".into(), "b".into()] }
    }

    #[test]
    fn each_converter_changes_exactly_one_trait() {
        let base = derive_traits(&segmenter());
        assert_eq!(base, PlanTraits::base_table());

        // Router: only DOP changes.
        let routed = HetNode::Router {
            input: Box::new(segmenter()),
            policy: RouterPolicy::LeastLoaded,
            targets: vec![DeviceTarget::cpu(8), DeviceTarget::gpu(2)],
        };
        let t = derive_traits(&routed);
        assert_eq!(t.dop, 10);
        assert_eq!((t.device, t.local, t.packed), (base.device, base.local, base.packed));

        // Device crossing: only the device changes.
        let crossed = HetNode::Cpu2Gpu { input: Box::new(segmenter()) };
        let t = derive_traits(&crossed);
        assert_eq!(t.device, DeviceKind::Gpu);
        assert_eq!((t.dop, t.local, t.packed), (base.dop, base.local, base.packed));

        // Mem-move: only locality changes.
        let moved = HetNode::MemMove { input: Box::new(segmenter()), broadcast: false };
        let t = derive_traits(&moved);
        assert!(t.local);
        assert_eq!((t.device, t.dop, t.packed), (base.device, base.dop, base.packed));

        // Unpack: only packing changes.
        let unpacked = HetNode::Unpack { input: Box::new(segmenter()) };
        let t = derive_traits(&unpacked);
        assert!(!t.packed);
        assert_eq!((t.device, t.dop, t.local), (base.device, base.dop, base.local));

        // Pack restores the packed trait.
        let packed = HetNode::Pack { input: Box::new(unpacked), hash_partitions: Some(4) };
        assert!(derive_traits(&packed).packed);
    }

    #[test]
    fn gpu2cpu_returns_to_cpu() {
        let plan =
            HetNode::Gpu2Cpu { input: Box::new(HetNode::Cpu2Gpu { input: Box::new(segmenter()) }) };
        assert_eq!(derive_traits(&plan).device, DeviceKind::CpuCore);
    }

    #[test]
    fn relational_operators_require_local_unpacked_input() {
        // Missing unpack: filter directly over packed segmenter output.
        let bad = HetNode::Filter {
            input: Box::new(HetNode::MemMove { input: Box::new(segmenter()), broadcast: false }),
            predicate: Expr::col(0).gt_lit(0),
        };
        let err = check_relational_requirements(&bad).unwrap_err();
        assert!(err.to_string().contains("unpack"));

        // Missing mem-move: unpacked but non-local input.
        let bad = HetNode::Filter {
            input: Box::new(HetNode::Unpack { input: Box::new(segmenter()) }),
            predicate: Expr::col(0).gt_lit(0),
        };
        let err = check_relational_requirements(&bad).unwrap_err();
        assert!(err.to_string().contains("mem-move"));

        // Properly converted input passes.
        let good = HetNode::Reduce {
            input: Box::new(HetNode::Filter {
                input: Box::new(HetNode::Unpack {
                    input: Box::new(HetNode::MemMove {
                        input: Box::new(segmenter()),
                        broadcast: false,
                    }),
                }),
                predicate: Expr::col(0).gt_lit(0),
            }),
            aggs: vec![AggSpec::count()],
            names: vec!["cnt".into()],
        };
        assert!(check_relational_requirements(&good).is_ok());
    }

    #[test]
    fn traits_propagate_through_relational_operators() {
        let plan = HetNode::Reduce {
            input: Box::new(HetNode::Unpack {
                input: Box::new(HetNode::MemMove {
                    input: Box::new(HetNode::Cpu2Gpu {
                        input: Box::new(HetNode::Router {
                            input: Box::new(segmenter()),
                            policy: RouterPolicy::LeastLoaded,
                            targets: vec![DeviceTarget::gpu(2)],
                        }),
                    }),
                    broadcast: false,
                }),
            }),
            aggs: vec![AggSpec::count()],
            names: vec!["cnt".into()],
        };
        let t = derive_traits(&plan);
        assert_eq!(t.device, DeviceKind::Gpu);
        assert_eq!(t.dop, 2);
        assert!(t.local);
        assert!(!t.packed);
    }
}
