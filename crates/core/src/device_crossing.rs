//! Device-crossing operators: cpu2gpu and gpu2cpu.
//!
//! §3.1: "Cpu2gpu copies the CPU context to the GPU and transfers control flow
//! by launching a GPU kernel, while gpu2cpu transfers the GPU context to the
//! CPU and starts a CPU task. … GPU programming frameworks do not support
//! launching CPU tasks in the middle of the execution … HetExchange implements
//! this functionality by breaking the gpu2cpu operator into two parts, one
//! that runs on each device. These parts communicate using an asynchronous
//! queue."
//!
//! In this reproduction the two operators also mark the *compilation-target
//! switch*: the pipeline above a cpu2gpu is generated with the GPU provider
//! and vice versa. The runtime structures below carry the queues and the
//! per-crossing accounting (number of launches / tasks spawned) that the cost
//! model charges as fixed overheads.

use crate::queue::BlockQueue;
use hetex_common::{BlockHandle, Result};
use hetex_gpu_sim::GpuDevice;
use hetex_topology::DeviceKind;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The CPU → GPU crossing: the CPU side launches kernels on a specific GPU.
#[derive(Debug, Clone)]
pub struct Cpu2Gpu {
    device: Arc<GpuDevice>,
    launches: Arc<AtomicU64>,
}

impl Cpu2Gpu {
    /// A crossing into `device`.
    pub fn new(device: Arc<GpuDevice>) -> Self {
        Self { device, launches: Arc::new(AtomicU64::new(0)) }
    }

    /// The GPU this crossing launches kernels on.
    pub fn device(&self) -> &Arc<GpuDevice> {
        &self.device
    }

    /// The compilation target on the far side of the crossing.
    pub fn target_kind(&self) -> DeviceKind {
        DeviceKind::Gpu
    }

    /// Record that a kernel consuming `handle` was launched; returns the
    /// handle unchanged (the crossing is control flow only — mem-move already
    /// made the data local).
    pub fn forward(&self, handle: BlockHandle) -> BlockHandle {
        self.launches.fetch_add(1, Ordering::Relaxed);
        handle
    }

    /// Number of kernel launches performed through this crossing.
    pub fn launches(&self) -> u64 {
        self.launches.load(Ordering::Relaxed)
    }
}

/// The GPU → CPU crossing, split into a GPU-side producer half and a CPU-side
/// consumer half around an asynchronous queue.
#[derive(Debug, Clone)]
pub struct Gpu2Cpu {
    queue: BlockQueue,
    tasks: Arc<AtomicU64>,
}

impl Gpu2Cpu {
    /// A crossing fed by `producers` GPU-side pipeline instances.
    pub fn new(producers: usize) -> Self {
        Self { queue: BlockQueue::new(producers), tasks: Arc::new(AtomicU64::new(0)) }
    }

    /// The compilation target on the far side of the crossing.
    pub fn target_kind(&self) -> DeviceKind {
        DeviceKind::CpuCore
    }

    /// GPU-side half: enqueue a task (block handle) for the CPU side.
    pub fn send_to_cpu(&self, handle: BlockHandle) -> Result<()> {
        self.tasks.fetch_add(1, Ordering::Relaxed);
        self.queue.push(handle)
    }

    /// GPU-side half: signal that one producer instance finished.
    pub fn producer_done(&self) -> Result<()> {
        self.queue.producer_done()
    }

    /// CPU-side half: receive the next task, or `None` when all producers are
    /// done and the queue is drained.
    pub fn receive_on_cpu(&self) -> Option<BlockHandle> {
        self.queue.pop()
    }

    /// CPU-side half: drain every pending task.
    pub fn drain_on_cpu(&self) -> Vec<BlockHandle> {
        self.queue.drain()
    }

    /// Number of tasks sent from the GPU side so far.
    pub fn tasks_sent(&self) -> u64 {
        self.tasks.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetex_common::{Block, BlockId, BlockMeta, ColumnData, MemoryNodeId};
    use hetex_gpu_sim::device::standalone_gpu;
    use std::thread;

    fn handle(id: usize) -> BlockHandle {
        let block = Block::new(vec![ColumnData::Int64(vec![id as i64])], 1).unwrap();
        BlockHandle::new(block, BlockMeta::new(BlockId::new(id), MemoryNodeId::new(0)))
    }

    #[test]
    fn cpu2gpu_counts_launches_and_preserves_handles() {
        let crossing = Cpu2Gpu::new(Arc::new(standalone_gpu()));
        assert_eq!(crossing.target_kind(), DeviceKind::Gpu);
        let h = crossing.forward(handle(3));
        assert_eq!(h.meta().id, BlockId::new(3));
        crossing.forward(handle(4));
        assert_eq!(crossing.launches(), 2);
        assert_eq!(crossing.device().memory().capacity(), 8 * (1 << 30));
    }

    #[test]
    fn gpu2cpu_is_an_async_queue_between_the_two_halves() {
        let crossing = Gpu2Cpu::new(1);
        assert_eq!(crossing.target_kind(), DeviceKind::CpuCore);
        crossing.send_to_cpu(handle(1)).unwrap();
        crossing.send_to_cpu(handle(2)).unwrap();
        crossing.producer_done().unwrap();
        let received = crossing.drain_on_cpu();
        assert_eq!(received.len(), 2);
        assert_eq!(crossing.tasks_sent(), 2);
    }

    #[test]
    fn gpu2cpu_supports_concurrent_gpu_producers() {
        let crossing = Gpu2Cpu::new(2);
        let producers: Vec<_> = (0..2)
            .map(|p| {
                let crossing = crossing.clone();
                thread::spawn(move || {
                    for i in 0..50 {
                        crossing.send_to_cpu(handle(p * 100 + i)).unwrap();
                    }
                    crossing.producer_done().unwrap();
                })
            })
            .collect();
        let consumer = {
            let crossing = crossing.clone();
            thread::spawn(move || {
                let mut count = 0;
                while crossing.receive_on_cpu().is_some() {
                    count += 1;
                }
                count
            })
        };
        for p in producers {
            p.join().unwrap();
        }
        assert_eq!(consumer.join().unwrap(), 100);
    }
}
