//! The unified routing/admission/steal cost model (CostModel v2).
//!
//! PRs 1–3 grew estimation logic organically and each left a named gap: the
//! router priced arena occupancy and a gate term inline
//! (`route_and_localize`), the staging budget was split evenly per queue
//! regardless of demand, gate estimates ignored the dependency's feed
//! latency, and steal profitability ignored link congestion. This module
//! consolidates every estimation term behind one calibrated interface —
//! the executor's router path, queue-admission path and steal path contain
//! no penalty arithmetic of their own any more, they *ask* the
//! [`CostModel`] — and ships the four ROADMAP refinements, each
//! individually toggleable through
//! [`CostModelConfig`](hetex_common::CostModelConfig):
//!
//! 1. **Demand-weighted staging quotas** ([`CostModel::split_node_budget`],
//!    [`DemandSplitter`]) — per-queue byte shares follow an EWMA of
//!    observed admitted bytes, re-split on a cadence, floored at one
//!    maximum-size block per active queue.
//! 2. **Cross-node control-plane term** ([`CostModel::control_plane_ns`]) —
//!    every push into a remote consumer's queue is a mutex acquisition
//!    bouncing the queue's cache lines across the interconnect; it is
//!    charged on the consumer's node axis.
//! 3. **Critical-path gate estimate** ([`CostModel::gate_estimate_ns`]) —
//!    a gated stage cannot open before its dependency's slowest transitive
//!    *feed* clears, not merely before the dependency's own committed load.
//! 4. **Link-congestion steal term** ([`CostModel::link_congestion_ns`],
//!    [`CostModel::steal_profitable`]) — a rescue whose relocation must
//!    queue behind outstanding DMA on the route is priced honestly, so
//!    near-equilibrium steals stay safe with stealing enabled.
//!
//! On top of the four terms sits the **`Calibration` subsystem** (PR 5),
//! which closes the estimate→observe→correct loop for *routing*, not just
//! stealing, through two inputs toggled by
//! [`CalibrationConfig`](hetex_common::CalibrationConfig):
//!
//! * **Observed-slowdown feedback** ([`SlowdownObserver`],
//!   [`CostModel::observed_device_slowdown`]) — a shared, lock-free EWMA of
//!   each device's charged-vs-nominal busy ratio, updated at block
//!   completion; routing multiplies it into the device-axis term of the
//!   projection, so a hidden 8× straggler stops *receiving* new blocks
//!   instead of only having them stolen back.
//! * **Measured topology constants** ([`CostModel::control_plane_ns`],
//!   [`CostModel::link_transfer_ns`]) — a micro-probe at engine
//!   construction (`hetex_topology::probe`) replaces the hard-coded QPI
//!   control-plane default and the declared link widths with measured
//!   figures.
//!
//! Work pricing itself (a `WorkProfile` on a `DeviceProfile`) stays in
//! `hetex-topology`'s `CostModel`, deliberately *outside* this type: the
//! executor keeps a bare work-pricing model for charging and builds one of
//! these per execution for estimation, so the two concerns cannot be mixed
//! up.

use hetex_common::{
    CalibrationConfig, CostModelConfig, EngineConfig, KernelMode, MemoryNodeId, Priority,
};
use hetex_topology::{CalibratedConstants, LinkSpec, ServerTopology};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Observed-slowdown ratio (charged vs nominal busy time) above which a
/// consumer is treated as a straggler: only observed stragglers are
/// stealable, and straggling workers pace their claims. Healthy devices
/// price out at exactly 1.0 in this simulation; the threshold leaves room
/// for estimator drift without letting ordinary imbalance trigger either
/// behaviour.
pub const STRAGGLER_RATIO: f64 = 1.5;

/// Hysteresis of the steal profitability check: the thief must beat the
/// victim by at least this many of its own average block costs. Near
/// equilibrium a steal only duplicates what least-loaded routing already
/// achieves while paying an extra relocation.
pub const STEAL_HYSTERESIS_BLOCKS: u64 = 2;

/// Default cost of acquiring a remote queue's mutex: one interconnect round
/// trip (QPI/UPI latency ~500 ns) plus the bounce of the queue's cache
/// lines. Charged per pushed block, so it is *not* scaled by the block's
/// weight — control-plane traffic is per handle, not per byte. With
/// `CalibrationConfig::measured_constants` on, the topology micro-probe's
/// measured round trip replaces this declared figure (see
/// [`CostModel::control_plane_ns`]).
pub const REMOTE_CONTROL_PLANE_NS: u64 = 700;

/// Arena occupancy below which the staging-pressure penalty stays disengaged:
/// a half-empty arena cannot park anyone, and pricing it would only add
/// wall-clock-dependent noise to otherwise stable routing decisions.
pub const OCCUPANCY_ENGAGE: f64 = 0.5;

/// How many byte admissions on a memory node pass between staging-quota
/// re-splits. Long enough that the EWMA sees a meaningful demand delta,
/// short enough that a workload shift re-balances within a few dozen blocks.
pub const QUOTA_RESPLIT_CADENCE: u64 = 32;

/// EWMA smoothing factor of the per-queue demand signal (weight of the most
/// recent re-split interval).
pub const DEMAND_EWMA_ALPHA: f64 = 0.5;

/// EWMA smoothing factor of the per-device observed-slowdown signal (weight
/// of the most recent block). A quarter keeps one noisy block from whipping
/// the routing multiplier around, while a genuine straggler still converges
/// within a handful of completions — early enough that most of the stream is
/// still unrouted when the feedback engages.
pub const SLOWDOWN_EWMA_ALPHA: f64 = 0.25;

/// Inputs of one steal profitability decision (see
/// [`CostModel::steal_profitable`]). All times are simulated nanoseconds;
/// the averages are *observed* charged costs, so a hidden slowdown is priced
/// by what the victim did, not what the estimates promised.
#[derive(Debug, Clone, Copy)]
pub struct StealQuery {
    /// The victim device's simulated clock.
    pub victim_clock_ns: u64,
    /// The victim's observed average charged cost per block.
    pub victim_avg_ns: u64,
    /// Blocks buffered in the victim's queue.
    pub backlog_depth: u64,
    /// The thief device's simulated clock.
    pub thief_clock_ns: u64,
    /// The thief's observed average charged cost per block.
    pub thief_avg_ns: u64,
    /// Outstanding DMA backlog on the relocation route (0 when the thief
    /// can address the block in place, or when the congestion term is off).
    pub congestion_ns: u64,
}

/// The shared observed-slowdown feedback of one execution: a lock-free EWMA
/// per device slot of the charged-vs-nominal busy ratio, updated by every
/// worker at block completion and read by every producer's routing decision.
/// This is the straggler detector's signal (PR 3 kept it per stage-slot,
/// consumed only by stealing) promoted to a device-wide observable that
/// routing projections multiply into the device axis: a device that
/// straggles in one stage straggles in all of them, and the feedback should
/// divert *new* blocks everywhere, not only rescue already-routed ones.
///
/// Lock-free: each slot is one `AtomicU64` holding the EWMA's `f64` bits
/// (zero bits encode "no observation yet" — a real EWMA is always ≥ 1.0,
/// whose bits are non-zero — and read as a nominal 1.0). Updates CAS-loop;
/// a lost race folds in one sample late, which only delays the estimate by
/// one block.
#[derive(Debug)]
pub struct SlowdownObserver {
    ewma_bits: Vec<AtomicU64>,
}

impl SlowdownObserver {
    /// An observer over `slots` device slots with no observations yet
    /// (every slot reads as a nominal 1.0).
    pub fn new(slots: usize) -> Self {
        Self { ewma_bits: (0..slots).map(|_| AtomicU64::new(0)).collect() }
    }

    /// Fold one completed block into `slot`'s EWMA: `charged_ns` is what the
    /// device clock was actually charged, `nominal_ns` what the nominal cost
    /// model prices for the same work. The per-block sample is floored at
    /// 1.0 — healthy devices price out at exactly nominal in this
    /// simulation, and a below-nominal fluke must not make a device look
    /// *faster* than its profile (the estimates stay conservative). The
    /// first observation seeds the EWMA at the sample itself, so a hidden
    /// straggler engages the feedback after its very first block.
    pub fn record(&self, slot: usize, charged_ns: u64, nominal_ns: u64) {
        if nominal_ns == 0 {
            return;
        }
        let Some(bits) = self.ewma_bits.get(slot) else { return };
        let sample = (charged_ns as f64 / nominal_ns as f64).max(1.0);
        let _ = bits.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |old_bits| {
            let next = if old_bits == 0 {
                sample
            } else {
                SLOWDOWN_EWMA_ALPHA * sample
                    + (1.0 - SLOWDOWN_EWMA_ALPHA) * f64::from_bits(old_bits)
            };
            Some(next.to_bits())
        });
    }

    /// `slot`'s current observed-slowdown EWMA (1.0 until observed).
    pub fn slowdown(&self, slot: usize) -> f64 {
        match self.ewma_bits.get(slot).map(|b| b.load(Ordering::Relaxed)).unwrap_or(0) {
            0 => 1.0,
            bits => f64::from_bits(bits),
        }
    }

    /// Every slot's current EWMA (1.0 for never-observed slots) — the
    /// per-slot observability surface `ExecutionResult` reports.
    pub fn snapshot(&self) -> Vec<f64> {
        (0..self.ewma_bits.len()).map(|i| self.slowdown(i)).collect()
    }
}

/// The unified cost model. Cheap to construct (per execution) and immutable;
/// the mutable demand state lives in [`DemandSplitter`]s owned by the
/// executor, and the mutable feedback state in the shared
/// [`SlowdownObserver`] this model reads.
#[derive(Debug, Clone)]
pub struct CostModel {
    cfg: CostModelConfig,
    calib: CalibrationConfig,
    kernel_mode: KernelMode,
    constants: Option<Arc<CalibratedConstants>>,
    observer: Option<Arc<SlowdownObserver>>,
}

impl Default for CostModel {
    fn default() -> Self {
        Self::new(CostModelConfig::default())
    }
}

impl CostModel {
    /// A cost model with the given term toggles and no calibration inputs
    /// (nominal profiles, declared constants).
    pub fn new(cfg: CostModelConfig) -> Self {
        Self {
            cfg,
            calib: CalibrationConfig::disabled(),
            kernel_mode: KernelMode::TupleAtATime,
            constants: None,
            observer: None,
        }
    }

    /// The cost model an engine configuration selects: the config's term
    /// toggles plus its calibration toggles and the configured CPU kernel
    /// mode (consumed by [`Self::estimate_kernel_mode`]). The calibration
    /// *inputs* (the probed constants, the per-execution observer) are
    /// attached by the executor via [`Self::with_constants`] /
    /// [`Self::with_observer`]; until they are, a toggled-on input degrades
    /// to the nominal behaviour.
    pub fn from_config(config: &EngineConfig) -> Self {
        Self {
            calib: config.calibration,
            kernel_mode: config.kernel_mode,
            ..Self::new(config.cost_model)
        }
    }

    /// A model with every refinement off — the PR 3 estimation behaviour
    /// (used by the legacy stage-at-a-time executor, which must stay a
    /// bit-stable differential baseline).
    pub fn legacy() -> Self {
        Self::new(CostModelConfig::disabled())
    }

    /// Attach the topology micro-probe's measured constants (consumed only
    /// when `calibration.measured_constants` is on).
    pub fn with_constants(mut self, constants: Arc<CalibratedConstants>) -> Self {
        self.constants = Some(constants);
        self
    }

    /// Attach the execution's shared slowdown observer. Observations are
    /// *recorded* through the model unconditionally (the EWMAs are an
    /// always-on observable, like `remote_control_acquisitions`); they are
    /// *priced* into projections only when `calibration.slowdown_feedback`
    /// is on.
    pub fn with_observer(mut self, observer: Arc<SlowdownObserver>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// The active term toggles.
    pub fn config(&self) -> CostModelConfig {
        self.cfg
    }

    /// The active calibration toggles.
    pub fn calibration(&self) -> CalibrationConfig {
        self.calib
    }

    /// The kernel mode block-cost *estimates* should price CPU work at.
    ///
    /// With the `vectorized_cost` term on, estimates use the mode the CPU
    /// lowering will actually execute (chunked selection-vector dispatch is
    /// cheaper per tuple, so charging the tuple-at-a-time shape would
    /// overcharge vectorized blocks and skew routing toward the GPU).
    /// Toggled off — including [`Self::legacy`], whose config disables every
    /// term — estimates fall back to the tuple-at-a-time shape, the
    /// bit-stable pre-vectorization baseline.
    pub fn estimate_kernel_mode(&self) -> KernelMode {
        if self.cfg.vectorized_cost {
            self.kernel_mode
        } else {
            KernelMode::TupleAtATime
        }
    }

    // ------------------------------------------------------------------
    // Calibration inputs
    // ------------------------------------------------------------------

    /// Record one completed block into the attached observer (no-op when
    /// none is attached). Always recorded, regardless of the feedback
    /// toggle — measurement is free, pricing is the policy decision.
    pub fn observe(&self, device_slot: usize, charged_ns: u64, nominal_ns: u64) {
        if let Some(observer) = &self.observer {
            observer.record(device_slot, charged_ns, nominal_ns);
        }
    }

    /// The observed-slowdown multiplier routing applies to `device_slot`'s
    /// device-axis term: the observer's EWMA with the feedback toggle on,
    /// exactly 1.0 otherwise (or before any observation), so the toggled-off
    /// projection math never leaves the integer domain.
    pub fn observed_device_slowdown(&self, device_slot: usize) -> f64 {
        match &self.observer {
            Some(observer) if self.calib.slowdown_feedback => observer.slowdown(device_slot),
            _ => 1.0,
        }
    }

    /// The per-block cost the steal-profitability check prices the victim
    /// at. The victim's own observed average (charged busy / processed) is
    /// the base estimate; with `calibration.steal_feedback` on (and an
    /// observer attached) it is floored at the nominal average times the
    /// victim *device's* observed-slowdown EWMA, so a victim whose few local
    /// samples happened to be cheap is still priced as slow when its device
    /// is a known straggler — the EWMA aggregates every instance on the
    /// device, not just this queue's history. Toggled off, the base estimate
    /// passes through untouched (the PR 5 behaviour bit-for-bit).
    pub fn steal_victim_avg_ns(
        &self,
        observed_avg_ns: u64,
        nominal_avg_ns: u64,
        victim_slot: usize,
    ) -> u64 {
        match &self.observer {
            Some(observer) if self.calib.steal_feedback => {
                let ewma = observer.slowdown(victim_slot);
                observed_avg_ns.max((nominal_avg_ns as f64 * ewma) as u64)
            }
            _ => observed_avg_ns,
        }
    }

    /// Estimated time to move `bytes` over `link`: the probe's measured
    /// effective rate when `calibration.measured_constants` is on (and the
    /// constants are attached), the link's declared width otherwise — the
    /// PR 4 behaviour bit-for-bit.
    pub fn link_transfer_ns(&self, link: &LinkSpec, bytes: f64) -> u64 {
        match &self.constants {
            Some(constants) if self.calib.measured_constants => constants.transfer_ns(link, bytes),
            _ => link.transfer_ns(bytes),
        }
    }

    /// Serving-layer fairness weight of a running query session: the
    /// priority class's base weight scaled by the estimated remaining
    /// simulated cost (in seconds, to keep the magnitudes tame). Weighted
    /// max-min sharing under these weights balances *completion*: a query
    /// with more work left draws a proportionally larger rate, so co-runners
    /// of one class converge on finishing together instead of the
    /// nearly-done query hoarding devices it barely needs — while the
    /// priority classes keep their configured base ratios throughout.
    pub fn fairness_weight(&self, priority: Priority, remaining_ns: u64) -> f64 {
        priority.weight() * (remaining_ns.max(1) as f64 / 1e9)
    }

    // ------------------------------------------------------------------
    // Router-path terms
    // ------------------------------------------------------------------

    /// Staging-pressure penalty of routing a `device_ns`-sized block to a
    /// consumer whose node arena is at `occupancy` (0.0–1.0): a block routed
    /// to a starved node would park its producer on a lease, so its
    /// projected cost grows with the leased fraction past
    /// [`OCCUPANCY_ENGAGE`].
    pub fn occupancy_penalty_ns(&self, device_ns: u64, occupancy: f64) -> u64 {
        let pressure = (occupancy - OCCUPANCY_ENGAGE).max(0.0) * 2.0;
        (device_ns as f64 * pressure) as u64
    }

    /// Control-plane cost of pushing one block handle to a consumer: the
    /// per-acquisition charge when the producer's node and the consumer's
    /// node differ (the push acquires a remote queue mutex), zero otherwise
    /// or when the term is toggled off. Charged on the consumer's *node*
    /// axis — it is traffic on the path to that node's memory, not work on
    /// the consumer's device. With `calibration.measured_constants` on (and
    /// the probe's constants attached) the charge is the topology's
    /// *measured* cross-socket round trip instead of the
    /// [`REMOTE_CONTROL_PLANE_NS`] QPI default.
    pub fn control_plane_ns(&self, remote: bool) -> u64 {
        if !(remote && self.cfg.control_plane_term) {
            return 0;
        }
        match &self.constants {
            Some(constants) if self.calib.measured_constants => constants.control_plane_ns,
            _ => REMOTE_CONTROL_PLANE_NS,
        }
    }

    /// Compose one consumer's projection from its two backlogs: the later of
    /// its device projection and its memory node's backlog (the same two
    /// clocks the executor charges; summing would double-count), plus a
    /// small device tie-breaker keeping the projection strictly increasing
    /// in the consumer's own backlog, plus — in governed mode only — a +1 ns
    /// nudge on non-local consumers so exact ties keep control-plane traffic
    /// on-socket.
    pub fn compose_projection(
        &self,
        device_projection_ns: u64,
        node_backlog_ns: u64,
        local: bool,
        numa_tiebreak: bool,
    ) -> u64 {
        let base =
            device_projection_ns.max(node_backlog_ns).saturating_add(device_projection_ns >> 7);
        if numa_tiebreak && !local {
            base.saturating_add(1)
        } else {
            base
        }
    }

    /// Split a gated consumer's transfer between the two projection axes.
    /// Only the spill of `transfer_ns` past the gate's remaining hiding
    /// capacity (`gate_ns` minus the transfer backlog `node_backlog_ns`
    /// already accumulated toward the consumer's node) delays the
    /// consumer's *device*; the **whole** transfer — hidden part and spill
    /// alike — is carried on the *node* axis, because it occupies the path
    /// to the consumer's memory regardless of the gate. The two axes are
    /// maxed by [`Self::compose_projection`], never summed, so the spill
    /// appearing on both does not double-count. Returns
    /// `(device_axis_ns, node_axis_ns)` — i.e. `(spill, transfer_ns)`.
    pub fn gated_transfer_split(
        &self,
        transfer_ns: u64,
        gate_ns: u64,
        node_backlog_ns: u64,
    ) -> (u64, u64) {
        let spill = transfer_ns.saturating_sub(gate_ns.saturating_sub(node_backlog_ns));
        (spill, transfer_ns)
    }

    // ------------------------------------------------------------------
    // Gate estimation (term 3)
    // ------------------------------------------------------------------

    /// Estimated opening time of a stage's dependency gate: the partial
    /// floor of already-completed dependencies (`floor_ns`) combined with
    /// the committed load of each still-running dependency. With the
    /// critical-path term on, a dependency's estimate is the maximum over
    /// its whole transitive *feed chain* (`feeds[p] == Some(s)` meaning
    /// stage `p` produces into stage `s`): a build fed by a slow scan
    /// cannot complete before that scan's backlog clears, no matter how
    /// little work the build itself has committed yet.
    ///
    /// `load_of(stage)` is a lookup (not a pre-built slice): this runs on
    /// the per-block routing hot path, and with the term off only the
    /// dependencies themselves are ever read.
    pub fn gate_estimate_ns(
        &self,
        deps: &[usize],
        floor_ns: u64,
        load_of: &dyn Fn(usize) -> u64,
        feeds: &[Option<usize>],
    ) -> u64 {
        let mut ns = floor_ns;
        for &dep in deps {
            let dep_ns = if self.cfg.gate_critical_path {
                Self::critical_path_ns(dep, load_of, feeds, 0)
            } else {
                load_of(dep)
            };
            ns = ns.max(dep_ns);
        }
        ns
    }

    /// The slowest committed load along `stage`'s transitive feed chain
    /// (including `stage` itself). The stage graph is a DAG; the depth guard
    /// only protects against malformed wiring.
    fn critical_path_ns(
        stage: usize,
        load_of: &dyn Fn(usize) -> u64,
        feeds: &[Option<usize>],
        depth: usize,
    ) -> u64 {
        let own = load_of(stage);
        if depth > feeds.len() {
            return own;
        }
        let mut best = own;
        for (producer, fed) in feeds.iter().enumerate() {
            if *fed == Some(stage) {
                best = best.max(Self::critical_path_ns(producer, load_of, feeds, depth + 1));
            }
        }
        best
    }

    // ------------------------------------------------------------------
    // Steal profitability (term 4)
    // ------------------------------------------------------------------

    /// True when `observed_slowdown` (charged over nominal busy time) marks
    /// a consumer as a straggler — the only consumers worth stealing from,
    /// and the ones that pace their own claims.
    pub fn is_straggler(&self, observed_slowdown: f64) -> bool {
        observed_slowdown > STRAGGLER_RATIO
    }

    /// Outstanding DMA backlog, in nanoseconds past `horizon_ns`, on the
    /// route between two memory nodes: the slowest link of the route frees
    /// only at its clock's current reservation end, and a relocation issued
    /// at the horizon queues behind that backlog. Zero on idle links, when
    /// source and destination coincide, or when the term is toggled off.
    pub fn link_congestion_ns(
        &self,
        topology: &ServerTopology,
        from: MemoryNodeId,
        to: MemoryNodeId,
        horizon_ns: u64,
    ) -> u64 {
        if !self.cfg.link_congestion_term || from == to {
            return 0;
        }
        let Ok(route) = topology.route(from, to) else { return 0 };
        route
            .iter()
            .filter_map(|&l| topology.link_clock(l).ok())
            .map(|clock| clock.now().as_nanos().saturating_sub(horizon_ns))
            .max()
            .unwrap_or(0)
    }

    /// Outstanding DMA **bytes** on the route between two memory nodes at
    /// `horizon_ns` — the congestion signal expressed in the unit the
    /// transfers were issued in (each link's backlog time times its
    /// bandwidth, worst link reported). Observability twin of
    /// [`Self::link_congestion_ns`].
    pub fn outstanding_link_bytes(
        &self,
        topology: &ServerTopology,
        from: MemoryNodeId,
        to: MemoryNodeId,
        horizon_ns: u64,
    ) -> f64 {
        if !self.cfg.link_congestion_term || from == to {
            return 0.0;
        }
        let Ok(route) = topology.route(from, to) else { return 0.0 };
        route
            .iter()
            .filter_map(|&l| {
                let clock = topology.link_clock(l).ok()?;
                let link = topology.link(l).ok()?;
                let backlog_ns = clock.now().as_nanos().saturating_sub(horizon_ns);
                Some(backlog_ns as f64 / 1e9 * link.bandwidth_gbps * 1e9)
            })
            .fold(0.0, f64::max)
    }

    /// The steal profitability decision: the stolen tail block would
    /// complete on the victim no earlier than `victim_clock + backlog ×
    /// victim_avg`, and on the thief at `thief_clock +
    /// `[`STEAL_HYSTERESIS_BLOCKS`]` × thief_avg + congestion`. The
    /// congestion term prices the relocation's queueing behind outstanding
    /// DMA, which is what keeps near-equilibrium rescues from losing to the
    /// link they would saturate.
    pub fn steal_profitable(&self, q: &StealQuery) -> bool {
        let victim_end =
            q.victim_clock_ns.saturating_add(q.victim_avg_ns.saturating_mul(q.backlog_depth));
        let thief_end = q
            .thief_clock_ns
            .saturating_add(q.thief_avg_ns.saturating_mul(STEAL_HYSTERESIS_BLOCKS))
            .saturating_add(q.congestion_ns);
        thief_end < victim_end
    }

    // ------------------------------------------------------------------
    // Staging quota shares (term 1)
    // ------------------------------------------------------------------

    /// Split a node's staging `budget` across its queues by observed
    /// `demands`, flooring every queue at `floor` bytes (one maximum-size
    /// block — an active queue must never starve below a single block, rule
    /// 3 of the §4.2 lease-ordering argument). The shares sum to exactly
    /// the budget: the proportional remainder after floors goes to demand,
    /// and rounding dust lands on the hungriest queue. When the floors
    /// alone exceed the budget (more queues than validation's per-device
    /// floor anticipated), or the term is toggled off, or no demand was
    /// observed yet, the split degrades to the even PR 2 split.
    pub fn split_node_budget(&self, budget: u64, floor: u64, demands: &[f64]) -> Vec<u64> {
        let n = demands.len() as u64;
        if n == 0 {
            return Vec::new();
        }
        let even = || vec![(budget / n).max(1); demands.len()];
        // Clamp each demand to non-negative finite before summing: the
        // shares below clamp their numerators the same way, and a negative
        // contribution to the denominator would let a single share exceed
        // the whole budget (violating the sum-to-budget contract).
        let total_demand: f64 =
            demands.iter().copied().filter(|d| d.is_finite()).map(|d| d.max(0.0)).sum();
        if !self.cfg.demand_weighted_quotas
            || floor.saturating_mul(n) > budget
            || total_demand <= 0.0
        {
            return even();
        }
        let spread = budget - floor * n;
        let mut shares: Vec<u64> = demands
            .iter()
            .map(|&d| floor + (spread as f64 * (d.max(0.0) / total_demand)) as u64)
            .collect();
        // Hand the rounding dust to the hungriest queue so the shares sum to
        // exactly the node budget.
        let assigned: u64 = shares.iter().sum();
        let hungriest = demands
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0);
        shares[hungriest] += budget.saturating_sub(assigned);
        // A zero-byte quota is meaningless (queues floor their quota at one
        // byte anyway); keep degenerate inputs safe.
        for share in &mut shares {
            *share = (*share).max(1);
        }
        shares
    }
}

/// Mutable per-node demand state of the quota re-split: an EWMA of each
/// queue's admitted bytes per re-split interval, advanced every
/// [`QUOTA_RESPLIT_CADENCE`] admissions. The executor owns one per memory
/// node (behind a mutex) and applies the returned shares to the node's
/// queues.
#[derive(Debug)]
pub struct DemandSplitter {
    ewma: Vec<f64>,
    last_totals: Vec<u64>,
    admissions: u64,
}

impl DemandSplitter {
    /// A splitter for `queues` queues with no demand observed yet.
    pub fn new(queues: usize) -> Self {
        Self { ewma: vec![0.0; queues], last_totals: vec![0; queues], admissions: 0 }
    }

    /// The current demand estimate per queue.
    pub fn demands(&self) -> &[f64] {
        &self.ewma
    }

    /// Record one admission. On the cadence boundary, fold each queue's
    /// newly admitted bytes (`totals(i)` is queue `i`'s cumulative admitted
    /// bytes) into the EWMA and return the fresh shares to apply; `None`
    /// between boundaries.
    pub fn on_admission(
        &mut self,
        totals: impl Fn(usize) -> u64,
        budget: u64,
        floor: u64,
        model: &CostModel,
    ) -> Option<Vec<u64>> {
        self.admissions += 1;
        if !self.admissions.is_multiple_of(QUOTA_RESPLIT_CADENCE) {
            return None;
        }
        for i in 0..self.ewma.len() {
            let total = totals(i);
            let delta = total.saturating_sub(self.last_totals[i]) as f64;
            self.last_totals[i] = total;
            self.ewma[i] = DEMAND_EWMA_ALPHA * delta + (1.0 - DEMAND_EWMA_ALPHA) * self.ewma[i];
        }
        Some(model.split_node_budget(budget, floor, &self.ewma))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetex_topology::{DmaEngine, SimTime};

    fn all_on() -> CostModel {
        CostModel::default()
    }

    #[test]
    fn estimate_kernel_mode_follows_config_gated_by_vectorized_cost_term() {
        // Default config: vectorized kernels + vectorized_cost term on, so
        // estimates price the executed mode.
        let config = EngineConfig::default();
        assert_eq!(CostModel::from_config(&config).estimate_kernel_mode(), KernelMode::Vectorized);

        // Term toggled off: estimates fall back to the tuple-at-a-time shape
        // even though execution stays vectorized.
        let toggled =
            EngineConfig { cost_model: config.cost_model.with_vectorized_cost(false), ..config };
        assert_eq!(
            CostModel::from_config(&toggled).estimate_kernel_mode(),
            KernelMode::TupleAtATime
        );

        // Legacy kernels estimate as legacy regardless of the term.
        let taat = EngineConfig::default().with_kernel_mode(KernelMode::TupleAtATime);
        assert_eq!(CostModel::from_config(&taat).estimate_kernel_mode(), KernelMode::TupleAtATime);

        // The legacy model (stage-at-a-time baseline) never prices vectorized.
        assert_eq!(CostModel::legacy().estimate_kernel_mode(), KernelMode::TupleAtATime);
    }

    #[test]
    fn control_plane_term_prices_remote_pushes_only() {
        let model = all_on();
        assert_eq!(model.control_plane_ns(false), 0);
        assert_eq!(model.control_plane_ns(true), REMOTE_CONTROL_PLANE_NS);
        // Toggled off, remote pushes are free again (PR 3 behaviour).
        let legacy = CostModel::legacy();
        assert_eq!(legacy.control_plane_ns(true), 0);
    }

    #[test]
    fn occupancy_penalty_engages_above_half() {
        let model = all_on();
        assert_eq!(model.occupancy_penalty_ns(1000, 0.0), 0);
        assert_eq!(model.occupancy_penalty_ns(1000, 0.5), 0);
        assert_eq!(model.occupancy_penalty_ns(1000, 0.75), 500);
        assert_eq!(model.occupancy_penalty_ns(1000, 1.0), 1000);
    }

    #[test]
    fn projection_composition_maxes_axes_and_nudges_remote_ties() {
        let model = all_on();
        // Device-dominated and node-dominated projections max, not sum.
        assert_eq!(model.compose_projection(1280, 100, true, false), 1280 + 10);
        assert_eq!(model.compose_projection(128, 5000, true, false), 5000 + 1);
        // The NUMA tie-break engages only in governed mode and only off-node.
        let local = model.compose_projection(128, 128, true, true);
        let remote = model.compose_projection(128, 128, false, true);
        assert_eq!(remote, local + 1);
        assert_eq!(
            model.compose_projection(128, 128, false, false),
            model.compose_projection(128, 128, true, false)
        );
    }

    #[test]
    fn gated_transfer_split_hides_up_to_the_gate() {
        let model = all_on();
        // Transfer fits entirely before the gate: nothing on the device axis.
        assert_eq!(model.gated_transfer_split(400, 1000, 0), (0, 400));
        // Accumulated node backlog eats the gate's hiding capacity.
        assert_eq!(model.gated_transfer_split(400, 1000, 800), (200, 400));
        // Transfer longer than the gate spills the difference.
        assert_eq!(model.gated_transfer_split(1500, 1000, 0), (500, 1500));
    }

    /// Three stages: 0 (scan) feeds 1 (build); stage 2 depends on 1.
    fn chain_feeds() -> Vec<Option<usize>> {
        vec![Some(1), None, None]
    }

    /// Stage-load lookup over a fixed vector (missing stages load 0).
    fn load_of(loads: &[u64]) -> impl Fn(usize) -> u64 + '_ {
        |s| loads.get(s).copied().unwrap_or(0)
    }

    #[test]
    fn gate_estimate_includes_the_dependency_feed_chain() {
        let model = all_on();
        let feeds = chain_feeds();
        // The build (stage 1) committed little, but its feed (stage 0) is
        // heavily backlogged: the gate cannot open before the scan clears.
        let loads = vec![9_000, 1_000, 0];
        assert_eq!(model.gate_estimate_ns(&[1], 0, &load_of(&loads), &feeds), 9_000);
        // Legacy estimate sees only the dependency's own committed load.
        assert_eq!(CostModel::legacy().gate_estimate_ns(&[1], 0, &load_of(&loads), &feeds), 1_000);
        // The already-open floor still dominates when larger.
        assert_eq!(model.gate_estimate_ns(&[1], 20_000, &load_of(&loads), &feeds), 20_000);
    }

    #[test]
    fn gate_estimate_is_monotone_in_feed_latency() {
        // Satellite acceptance: a slower feed can only open the gate later.
        let model = all_on();
        let feeds = chain_feeds();
        let mut previous = 0;
        for feed_load in [0u64, 500, 2_000, 2_000, 50_000] {
            let loads = vec![feed_load, 1_000, 0];
            let estimate = model.gate_estimate_ns(&[1], 0, &load_of(&loads), &feeds);
            assert!(
                estimate >= previous,
                "slower feed ({feed_load}) opened the gate earlier: {estimate} < {previous}"
            );
            assert!(estimate >= 1_000, "the dependency's own load is a lower bound");
            previous = estimate;
        }
    }

    #[test]
    fn congestion_is_zero_on_idle_links_and_grows_with_backlog() {
        let model = all_on();
        let topology = ServerTopology::paper_server();
        let cpu = MemoryNodeId::new(0);
        let gpu = MemoryNodeId::new(2);
        // Satellite acceptance: idle links carry no congestion term.
        assert_eq!(model.link_congestion_ns(&topology, cpu, gpu, 0), 0);
        assert_eq!(model.outstanding_link_bytes(&topology, cpu, gpu, 0), 0.0);
        assert_eq!(model.link_congestion_ns(&topology, cpu, cpu, 0), 0);
        // Schedule real DMA over the PCIe link: the backlog becomes visible.
        let dma = DmaEngine::new(std::sync::Arc::clone(&topology));
        dma.schedule(1.2e9, cpu, gpu, SimTime::ZERO).unwrap();
        let congested = model.link_congestion_ns(&topology, cpu, gpu, 0);
        assert!(congested > 0, "a scheduled transfer must back the link up");
        assert!(model.outstanding_link_bytes(&topology, cpu, gpu, 0) > 1e9);
        // A horizon past the backlog sees the link idle again…
        assert_eq!(model.link_congestion_ns(&topology, cpu, gpu, congested), 0);
        // …and the toggled-off model never prices it.
        assert_eq!(CostModel::legacy().link_congestion_ns(&topology, cpu, gpu, 0), 0);
        topology.reset_clocks();
    }

    #[test]
    fn steal_profitability_honours_hysteresis_and_congestion() {
        let model = all_on();
        let base = StealQuery {
            victim_clock_ns: 1_000,
            victim_avg_ns: 800,
            backlog_depth: 4,
            thief_clock_ns: 900,
            thief_avg_ns: 500,
            congestion_ns: 0,
        };
        // victim_end 4200 vs thief_end 1900: profitable.
        assert!(model.steal_profitable(&base));
        // Congestion on the relocation route flips the decision.
        assert!(!model.steal_profitable(&StealQuery { congestion_ns: 2_400, ..base }));
        // Near equilibrium the hysteresis declines the steal.
        let tight = StealQuery {
            victim_clock_ns: 1_000,
            victim_avg_ns: 500,
            backlog_depth: 2,
            thief_clock_ns: 1_000,
            thief_avg_ns: 500,
            congestion_ns: 0,
        };
        assert!(!model.steal_profitable(&tight));
    }

    #[test]
    fn steal_feedback_prices_the_victim_by_its_device_ewma() {
        let observer = Arc::new(SlowdownObserver::new(4));
        // Device slot 2 is an observed 4x straggler.
        observer.record(2, 4_000, 1_000);
        let on = CostModel::from_config(
            &EngineConfig::default()
                .with_calibration(CalibrationConfig::disabled().with_steal_feedback(true)),
        )
        .with_observer(Arc::clone(&observer));
        // The EWMA floors the victim estimate: 500 observed, but nominal 600
        // at a 4x device reads 2400.
        assert_eq!(on.steal_victim_avg_ns(500, 600, 2), 2_400);
        // A healthy device (slot 0) passes the observed average through.
        assert_eq!(on.steal_victim_avg_ns(500, 600, 0), 600);
        assert_eq!(on.steal_victim_avg_ns(700, 600, 0), 700);
        // Toggled off — or with no observer attached — the base estimate is
        // untouched (the PR 5 behaviour bit-for-bit).
        let off = CostModel::from_config(
            &EngineConfig::default().with_calibration(CalibrationConfig::disabled()),
        )
        .with_observer(observer);
        assert_eq!(off.steal_victim_avg_ns(500, 600, 2), 500);
        let detached = CostModel::default();
        assert_eq!(detached.steal_victim_avg_ns(500, 600, 2), 500);
    }

    #[test]
    fn straggler_threshold_separates_healthy_from_slow() {
        let model = all_on();
        assert!(!model.is_straggler(1.0));
        assert!(!model.is_straggler(STRAGGLER_RATIO));
        assert!(model.is_straggler(STRAGGLER_RATIO + 0.01));
        assert!(model.is_straggler(8.0));
    }

    #[test]
    fn demand_shares_sum_to_the_budget_and_respect_the_floor() {
        let model = all_on();
        let budget = 10_000u64;
        let floor = 1_000u64;
        let shares = model.split_node_budget(budget, floor, &[900.0, 100.0, 0.0]);
        // Satellite acceptance: shares sum to the node budget…
        assert_eq!(shares.iter().sum::<u64>(), budget);
        // …no queue — not even the idle one — starves below one block…
        assert!(shares.iter().all(|&s| s >= floor), "{shares:?}");
        // …and demand ranks the shares.
        assert!(shares[0] > shares[1], "{shares:?}");
        assert!(shares[1] > shares[2], "{shares:?}");
    }

    #[test]
    fn demand_split_degrades_to_even_when_it_cannot_do_better() {
        let model = all_on();
        // Floors exceeding the budget: even split (PR 2 behaviour).
        assert_eq!(model.split_node_budget(1_000, 600, &[1.0, 1.0]), vec![500, 500]);
        // No observed demand yet: even split.
        assert_eq!(model.split_node_budget(900, 100, &[0.0, 0.0, 0.0]), vec![300, 300, 300]);
        // Toggled off: even split regardless of demand.
        assert_eq!(
            CostModel::legacy().split_node_budget(900, 100, &[800.0, 0.0, 0.0]),
            vec![300, 300, 300]
        );
        // Degenerate inputs stay safe.
        assert!(model.split_node_budget(1_000, 100, &[]).is_empty());
        assert_eq!(model.split_node_budget(0, 0, &[1.0]), vec![1]);
        // Negative or non-finite demands are clamped out of the denominator
        // too, so no single share can exceed the budget.
        let shares = model.split_node_budget(10_000, 1_000, &[-500.0, 1_000.0, f64::NAN]);
        assert_eq!(shares.iter().sum::<u64>(), 10_000, "{shares:?}");
        assert!(shares.iter().all(|&s| (1_000..=10_000).contains(&s)), "{shares:?}");
    }

    #[test]
    fn demand_splitter_resplits_on_the_cadence() {
        let model = all_on();
        let mut splitter = DemandSplitter::new(2);
        // Queue 0 admits 3000 bytes/interval, queue 1 admits 1000.
        let totals = |i: usize| if i == 0 { 3_000 } else { 1_000 };
        let mut resplits = 0;
        let mut last = None;
        for _ in 0..QUOTA_RESPLIT_CADENCE * 3 {
            if let Some(shares) = splitter.on_admission(totals, 8_000, 1_000, &model) {
                resplits += 1;
                assert_eq!(shares.iter().sum::<u64>(), 8_000);
                assert!(shares[0] > shares[1], "demand must rank the shares: {shares:?}");
                last = Some(shares);
            }
        }
        assert_eq!(resplits, 3, "one re-split per cadence interval");
        // After the first interval the deltas are zero, so the EWMA decays
        // toward even — but demand ordering is preserved while it lasts.
        assert!(last.unwrap()[0] >= 1_000);
        assert!(splitter.demands()[0] >= splitter.demands()[1]);
    }

    #[test]
    fn construction_carries_the_configured_toggles() {
        let model = all_on();
        assert_eq!(model.config(), CostModelConfig::default());
        assert_eq!(CostModel::legacy().config(), CostModelConfig::disabled());
        let from_config = CostModel::from_config(&EngineConfig::default());
        assert!(from_config.config().gate_critical_path);
        // The engine default also carries the calibration toggles; a bare
        // `new` leaves calibration off (the PR 4 behaviour).
        assert!(from_config.calibration().slowdown_feedback);
        assert!(!model.calibration().measured_constants);
        assert_eq!(CostModel::legacy().calibration(), CalibrationConfig::disabled());
    }

    #[test]
    fn slowdown_observer_seeds_converges_and_floors() {
        let observer = SlowdownObserver::new(2);
        // Unobserved slots read nominal.
        assert_eq!(observer.slowdown(0), 1.0);
        assert_eq!(observer.snapshot(), vec![1.0, 1.0]);
        // The first sample seeds the EWMA directly (no blend with 1.0)…
        observer.record(0, 8_000, 1_000);
        assert_eq!(observer.slowdown(0), 8.0);
        // …and further samples blend at SLOWDOWN_EWMA_ALPHA.
        observer.record(0, 4_000, 1_000);
        let expected = SLOWDOWN_EWMA_ALPHA * 4.0 + (1.0 - SLOWDOWN_EWMA_ALPHA) * 8.0;
        assert!((observer.slowdown(0) - expected).abs() < 1e-12);
        // Below-nominal samples floor at 1.0: a device never looks *faster*
        // than its profile.
        observer.record(1, 500, 1_000);
        assert_eq!(observer.slowdown(1), 1.0);
        // Degenerate inputs are ignored rather than panicking or poisoning.
        observer.record(0, 100, 0);
        observer.record(99, 100, 100);
        assert!((observer.slowdown(0) - expected).abs() < 1e-12);
    }

    #[test]
    fn slowdown_observer_is_safe_under_concurrent_recording() {
        let observer = Arc::new(SlowdownObserver::new(1));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let observer = Arc::clone(&observer);
                scope.spawn(move || {
                    for _ in 0..1_000 {
                        observer.record(0, 4_000, 1_000);
                    }
                });
            }
        });
        // Every sample was 4.0, so whatever interleaving happened the EWMA
        // is exactly 4.0.
        assert_eq!(observer.slowdown(0), 4.0);
    }

    #[test]
    fn feedback_multiplier_requires_toggle_and_observer() {
        let observer = Arc::new(SlowdownObserver::new(1));
        observer.record(0, 8_000, 1_000);
        // Toggle off (even with an observer attached): nominal.
        let off = CostModel::default().with_observer(Arc::clone(&observer));
        assert_eq!(off.observed_device_slowdown(0), 1.0);
        // Toggle on, observer attached: the EWMA.
        let config = EngineConfig::default();
        let on = CostModel::from_config(&config).with_observer(Arc::clone(&observer));
        assert_eq!(on.observed_device_slowdown(0), 8.0);
        // Toggle on, no observer (stage-at-a-time): nominal.
        assert_eq!(CostModel::from_config(&config).observed_device_slowdown(0), 1.0);
        // Recording through the model reaches the shared observer.
        on.observe(0, 1_000, 1_000);
        assert!(observer.slowdown(0) < 8.0);
    }

    #[test]
    fn measured_constants_replace_the_declared_figures_only_when_on() {
        let topology = ServerTopology::paper_server();
        let constants = Arc::new(hetex_topology::probe::probe(&topology));
        let link = &topology.links()[0];
        let config = EngineConfig::default();
        let calibrated = CostModel::from_config(&config).with_constants(Arc::clone(&constants));
        // The measured round trip replaces the 700 ns QPI default…
        assert_eq!(calibrated.control_plane_ns(true), constants.control_plane_ns);
        assert_ne!(calibrated.control_plane_ns(true), REMOTE_CONTROL_PLANE_NS);
        assert_eq!(calibrated.control_plane_ns(false), 0);
        // …and transfer estimates use the measured effective rate.
        assert_eq!(calibrated.link_transfer_ns(link, 1e9), constants.transfer_ns(link, 1e9));
        // Calibration off (or constants not attached): declared figures,
        // bit-for-bit.
        let nominal =
            CostModel::from_config(&config.clone().with_calibration(CalibrationConfig::disabled()))
                .with_constants(Arc::clone(&constants));
        assert_eq!(nominal.control_plane_ns(true), REMOTE_CONTROL_PLANE_NS);
        assert_eq!(nominal.link_transfer_ns(link, 1e9), link.transfer_ns(1e9));
        let unattached = CostModel::from_config(&config);
        assert_eq!(unattached.control_plane_ns(true), REMOTE_CONTROL_PLANE_NS);
        assert_eq!(unattached.link_transfer_ns(link, 1e9), link.transfer_ns(1e9));
        // The control-plane *term* toggle still gates the charge entirely.
        let term_off = CostModel::new(CostModelConfig::disabled()).with_constants(constants);
        assert_eq!(term_off.control_plane_ns(true), 0);
    }
}
