//! Pack / unpack / hash-pack.
//!
//! §3.2: "The pack operator groups tuples into a block and flushes it to the
//! next operator whenever it fills up. The unpack operator takes a block of
//! tuples as input and feeds them one tuple at a time to the next operator."
//! Hash-pack additionally keeps one open block per hash value so every emitted
//! block is hash-homogeneous, which is what lets the router route whole blocks
//! without touching tuples.
//!
//! Inside compiled pipelines the packing is fused into the generated code (the
//! `Pack` terminal step of `hetex-jit`); the standalone [`Packer`]/[`Unpacker`]
//! here are used by the interpreted baseline engines, by tests of the
//! pack-invariants, and wherever blocks need to be (re)built outside a
//! pipeline.

use hetex_common::{
    Block, BlockHandle, BlockId, BlockMeta, ColumnData, HetError, MemoryNodeId, Result,
};
use std::collections::HashMap;

/// Groups row-major tuples into blocks, optionally hash-partitioned.
#[derive(Debug)]
pub struct Packer {
    capacity: usize,
    node: MemoryNodeId,
    weight: f64,
    /// `Some((key_column, partition_count))` makes this a hash-pack.
    hash: Option<(usize, usize)>,
    open: HashMap<usize, Vec<Vec<i64>>>,
    next_id: usize,
}

impl Packer {
    /// A plain pack operator producing `capacity`-row blocks on `node`.
    pub fn new(capacity: usize, node: MemoryNodeId) -> Self {
        Self { capacity, node, weight: 1.0, hash: None, open: HashMap::new(), next_id: 0 }
    }

    /// A hash-pack keyed on `key_column` with `partitions` partitions.
    pub fn hash_partitioned(
        capacity: usize,
        node: MemoryNodeId,
        key_column: usize,
        partitions: usize,
    ) -> Result<Self> {
        if partitions == 0 {
            return Err(HetError::Plan("hash-pack needs at least one partition".into()));
        }
        Ok(Self {
            capacity,
            node,
            weight: 1.0,
            hash: Some((key_column, partitions)),
            open: HashMap::new(),
            next_id: 0,
        })
    }

    /// Set the scale-extrapolation weight stamped on produced blocks.
    pub fn with_weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }

    fn partition_of(&self, row: &[i64]) -> Result<usize> {
        match self.hash {
            None => Ok(0),
            Some((col, partitions)) => {
                let key = *row.get(col).ok_or_else(|| {
                    HetError::Execution(format!("hash-pack key column {col} missing from tuple"))
                })?;
                Ok((hetex_jit::expr::hash_i64(key).unsigned_abs() % partitions as u64) as usize)
            }
        }
    }

    fn seal(&mut self, partition: usize, rows: Vec<Vec<i64>>) -> Result<BlockHandle> {
        let width = rows.first().map(Vec::len).unwrap_or(0);
        let mut columns = vec![Vec::with_capacity(rows.len()); width];
        for row in &rows {
            if row.len() != width {
                return Err(HetError::Execution("ragged tuple pushed into pack".into()));
            }
            for (c, v) in row.iter().enumerate() {
                columns[c].push(*v);
            }
        }
        let block = Block::new(columns.into_iter().map(ColumnData::Int64).collect(), rows.len())?;
        let mut meta = BlockMeta::new(BlockId::new(self.next_id), self.node);
        self.next_id += 1;
        meta.weight = self.weight;
        meta.hash_partition = self.hash.map(|_| partition as u64);
        Ok(BlockHandle::new(block, meta))
    }

    /// Push one tuple; returns a sealed block if the tuple's partition filled up.
    pub fn push(&mut self, row: Vec<i64>) -> Result<Option<BlockHandle>> {
        let partition = self.partition_of(&row)?;
        let bucket = self.open.entry(partition).or_default();
        bucket.push(row);
        if bucket.len() >= self.capacity {
            let full = self.open.remove(&partition).unwrap_or_default();
            return Ok(Some(self.seal(partition, full)?));
        }
        Ok(None)
    }

    /// Flush every partially filled block.
    pub fn flush(&mut self) -> Result<Vec<BlockHandle>> {
        let mut partitions: Vec<usize> = self.open.keys().copied().collect();
        partitions.sort_unstable();
        let mut out = Vec::new();
        for p in partitions {
            let rows = self.open.remove(&p).unwrap_or_default();
            if !rows.is_empty() {
                out.push(self.seal(p, rows)?);
            }
        }
        Ok(out)
    }

    /// Number of tuples currently buffered in open blocks.
    pub fn buffered(&self) -> usize {
        self.open.values().map(Vec::len).sum()
    }
}

/// Feeds a block's tuples one at a time to the next operator.
#[derive(Debug, Default)]
pub struct Unpacker;

impl Unpacker {
    /// Iterate the tuples of a block as row-major `Vec<i64>`s.
    pub fn rows(handle: &BlockHandle) -> impl Iterator<Item = Vec<i64>> + '_ {
        let block = handle.block();
        (0..block.rows())
            .map(move |row| block.columns().iter().map(|c| c.get_i64(row).unwrap_or(0)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rows(n: usize, width: usize) -> Vec<Vec<i64>> {
        (0..n).map(|i| (0..width).map(|c| (i * 10 + c) as i64).collect()).collect()
    }

    #[test]
    fn pack_flushes_full_blocks_and_remainder() {
        let mut packer = Packer::new(4, MemoryNodeId::new(0));
        let mut sealed = Vec::new();
        for row in rows(10, 3) {
            if let Some(block) = packer.push(row).unwrap() {
                sealed.push(block);
            }
        }
        assert_eq!(sealed.len(), 2);
        assert!(sealed.iter().all(|b| b.rows() == 4));
        assert_eq!(packer.buffered(), 2);
        let tail = packer.flush().unwrap();
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].rows(), 2);
        assert_eq!(packer.buffered(), 0);
    }

    #[test]
    fn pack_then_unpack_is_identity() {
        let input = rows(57, 4);
        let mut packer = Packer::new(8, MemoryNodeId::new(1)).with_weight(3.0);
        let mut blocks = Vec::new();
        for row in input.clone() {
            if let Some(b) = packer.push(row).unwrap() {
                blocks.push(b);
            }
        }
        blocks.extend(packer.flush().unwrap());
        let unpacked: Vec<Vec<i64>> =
            blocks.iter().flat_map(|b| Unpacker::rows(b).collect::<Vec<_>>()).collect();
        assert_eq!(unpacked, input);
        assert!(blocks.iter().all(|b| (b.meta().weight - 3.0).abs() < f64::EPSILON));
        assert!(blocks.iter().all(|b| b.meta().location == MemoryNodeId::new(1)));
    }

    #[test]
    fn hash_pack_blocks_are_homogeneous_and_tagged() {
        let mut packer = Packer::hash_partitioned(16, MemoryNodeId::new(0), 0, 5).unwrap();
        let mut blocks = Vec::new();
        for i in 0..500 {
            if let Some(b) = packer.push(vec![i % 37, i]).unwrap() {
                blocks.push(b);
            }
        }
        blocks.extend(packer.flush().unwrap());
        assert!(!blocks.is_empty());
        for block in &blocks {
            let tag = block.meta().hash_partition.expect("hash-pack must tag blocks");
            for row in Unpacker::rows(block) {
                let expected = hetex_jit::expr::hash_i64(row[0]).unsigned_abs() % 5;
                assert_eq!(expected, tag, "tuple in block with a different hash partition");
            }
        }
    }

    #[test]
    fn invalid_configurations_error() {
        assert!(Packer::hash_partitioned(8, MemoryNodeId::new(0), 0, 0).is_err());
        let mut packer = Packer::hash_partitioned(8, MemoryNodeId::new(0), 3, 2).unwrap();
        assert!(packer.push(vec![1, 2]).is_err());
        let mut plain = Packer::new(2, MemoryNodeId::new(0));
        plain.push(vec![1, 2]).unwrap();
        // A ragged tuple is caught when the block is sealed.
        plain.push(vec![9]).unwrap_err();
    }

    proptest! {
        #[test]
        fn prop_pack_unpack_identity(
            tuples in proptest::collection::vec(proptest::collection::vec(-1000i64..1000, 3), 0..200),
            capacity in 1usize..32,
        ) {
            let mut packer = Packer::new(capacity, MemoryNodeId::new(0));
            let mut blocks = Vec::new();
            for row in tuples.clone() {
                if let Some(b) = packer.push(row).unwrap() {
                    blocks.push(b);
                }
            }
            blocks.extend(packer.flush().unwrap());
            let unpacked: Vec<Vec<i64>> =
                blocks.iter().flat_map(|b| Unpacker::rows(b).collect::<Vec<_>>()).collect();
            prop_assert_eq!(unpacked, tuples);
        }

        #[test]
        fn prop_hash_pack_never_drops_or_mixes(
            keys in proptest::collection::vec(-500i64..500, 1..300),
            partitions in 1usize..8,
            capacity in 1usize..16,
        ) {
            let mut packer =
                Packer::hash_partitioned(capacity, MemoryNodeId::new(0), 0, partitions).unwrap();
            let mut blocks = Vec::new();
            for (i, k) in keys.iter().enumerate() {
                if let Some(b) = packer.push(vec![*k, i as i64]).unwrap() {
                    blocks.push(b);
                }
            }
            blocks.extend(packer.flush().unwrap());
            // No tuple dropped or duplicated.
            let total: usize = blocks.iter().map(|b| b.rows()).sum();
            prop_assert_eq!(total, keys.len());
            // Every block is homogeneous with respect to the partition function.
            for block in &blocks {
                let tag = block.meta().hash_partition.unwrap();
                for row in Unpacker::rows(block) {
                    prop_assert_eq!(
                        hetex_jit::expr::hash_i64(row[0]).unsigned_abs() % partitions as u64,
                        tag
                    );
                }
            }
        }
    }
}
